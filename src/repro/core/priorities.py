"""Priority-weighted yield objective (extension).

The paper optimizes the plain minimum yield; its §6 scheduler already
supports administrator-assigned weights at the runtime-sharing level.
This module lifts weights to the *placement* objective: maximize
``min_j y_j / w_j`` with per-service priorities ``w_j ∈ (0, 1]``, i.e.
"a service with priority 0.5 is satisfied at half the performance of a
priority-1.0 service".

The reduction is exact and reuses every algorithm unchanged: scaling
service *j*'s needs by ``w_j`` makes the standard uniform yield ``z``
correspond to true yield ``y_j = z·w_j`` (allocations
``r + z·(w n) = r + (z w)·n``).  Since the standard search caps ``z`` at
1, priorities double as performance ceilings: a priority-0.5 service
tops out at 50% of its peak needs, which is exactly the semantics of
"pricing structures may impose maximum virtual machine allocations"
from §2.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .allocation import Allocation
from .exceptions import InvalidServiceError
from .resources import STRICT_FIT_ATOL
from .instance import ProblemInstance
from .service import ServiceArray

__all__ = ["apply_priorities", "weighted_yields", "weighted_minimum_yield"]


def _check_weights(weights: np.ndarray, count: int) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (count,):
        raise InvalidServiceError(
            f"need one weight per service: got {weights.shape}, "
            f"expected ({count},)")
    if (weights <= 0).any() or (weights > 1.0 + STRICT_FIT_ATOL).any():
        raise InvalidServiceError("priorities must lie in (0, 1]")
    return weights


def apply_priorities(instance: ProblemInstance,
                     weights: Sequence[float]) -> ProblemInstance:
    """Instance whose standard min-yield optimum solves the weighted one.

    Needs (elementary and aggregate) of service *j* are scaled by
    ``w_j``; requirements are untouched (the minimum acceptable level is
    priority-independent).
    """
    sv = instance.services
    weights = _check_weights(np.asarray(weights), len(sv))
    scaled = ServiceArray.from_arrays(
        sv.req_elem, sv.req_agg,
        sv.need_elem * weights[:, None],
        sv.need_agg * weights[:, None],
        names=sv.names)
    return instance.replace_services(scaled)


def weighted_yields(allocation: Allocation,
                    weights: Sequence[float]) -> np.ndarray:
    """Map an allocation on the *scaled* instance back to true yields.

    ``allocation.yields`` are the standard yields ``z_j`` of the scaled
    instance; the true yield of service *j* is ``z_j · w_j``.
    """
    weights = _check_weights(np.asarray(weights),
                             allocation.yields.shape[0])
    return allocation.yields * weights


def weighted_minimum_yield(allocation: Allocation,
                           weights: Sequence[float]) -> float:
    """The weighted objective ``min_j y_j / w_j`` (== min scaled yield)."""
    _check_weights(np.asarray(weights), allocation.yields.shape[0])
    return allocation.minimum_yield()
