"""Service-level-agreement classes with differentiated yield floors.

The paper optimizes one global objective — the minimum yield over all
services — which implicitly treats every service as equally important.
Real hosting platforms sell differentiated service levels instead
(QoS-based resource partitioning, see PAPERS.md): a *gold* tenant buys a
guaranteed fraction of its stated need, *silver* a weaker one, and
*best-effort* rides along on whatever is left.

This module defines the class vocabulary shared by the dynamic
simulator (per-step violation accounting), the workload generators
(per-service class annotation), and the service daemon (violation
counters on ``/metrics``).  A violation is simply a service whose
achieved yield falls below its class floor — including services left
unplaced, whose achieved yield is 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .resources import STRICT_FIT_ATOL

__all__ = [
    "SLAClass",
    "SLA_CLASSES",
    "SLA_NAMES",
    "DEFAULT_SLA",
    "SLA_FLOOR_ATOL",
    "sla_floor",
    "sla_floors",
    "draw_sla_classes",
]

#: Slack applied when comparing an achieved yield against a floor, so a
#: solver answer sitting exactly on the floor is never counted as a
#: violation through float noise alone.
SLA_FLOOR_ATOL: float = STRICT_FIT_ATOL


@dataclass(frozen=True)
class SLAClass:
    """One service level: a name and the minimum acceptable yield."""

    name: str
    min_yield: float

    def violated_by(self, achieved: float) -> bool:
        return achieved < self.min_yield - SLA_FLOOR_ATOL


#: The three classes the reproduction models.  Floors are fractions of
#: the service's *stated need* actually delivered (the paper's yield):
#: gold is a hard half, silver a quarter, best-effort has no floor.
SLA_CLASSES: dict[str, SLAClass] = {
    "gold": SLAClass("gold", 0.5),
    "silver": SLAClass("silver", 0.25),
    "best-effort": SLAClass("best-effort", 0.0),
}

#: Deterministic class order (strongest first) for iteration/reporting.
SLA_NAMES: tuple[str, ...] = ("gold", "silver", "best-effort")

DEFAULT_SLA: str = "best-effort"


def sla_floor(name: str) -> float:
    """Minimum-yield floor of class *name* (raises on unknown names)."""
    try:
        return SLA_CLASSES[name].min_yield
    except KeyError:
        raise ValueError(
            f"unknown SLA class {name!r}; expected one of {SLA_NAMES}"
        ) from None


def sla_floors(names: Sequence[str]) -> np.ndarray:
    """``(N,)`` float64 floor vector for a per-service class list."""
    return np.array([sla_floor(n) for n in names], dtype=np.float64)


def draw_sla_classes(count: int, mix: Mapping[str, float],
                     rng: np.random.Generator) -> tuple[str, ...]:
    """Draw *count* class names from a weighted *mix*.

    The mix keys are validated against :data:`SLA_CLASSES`; weights are
    normalized, so ``{"gold": 1, "silver": 3}`` means a 1:3 split.  The
    draw order is deterministic given the generator state.
    """
    if not mix:
        raise ValueError("SLA mix must name at least one class")
    names = [n for n in SLA_NAMES if n in mix]
    if len(names) != len(mix):
        unknown = sorted(set(mix) - set(SLA_NAMES))
        raise ValueError(f"unknown SLA class(es) in mix: {unknown}")
    weights = np.array([float(mix[n]) for n in names], dtype=np.float64)
    if (weights < 0).any() or weights.sum() <= 0:
        raise ValueError("SLA mix weights must be non-negative, sum > 0")
    picks = rng.choice(len(names), size=count, p=weights / weights.sum())
    return tuple(names[int(i)] for i in picks)
