"""Allocations: placements plus per-service yields, with validation.

An :class:`Allocation` assigns every service to exactly one node and a yield
in [0, 1].  Validity (§2, Eqs. 5-6 of the MILP) means:

* **elementary**: for each service *j* on node *h* and dimension *d*:
  ``r^e_jd + y_j n^e_jd <= c^e_hd``;
* **aggregate**: for each node *h* and dimension *d*:
  ``Σ_{j on h} (r^a_jd + y_j n^a_jd) <= c^a_hd``.

The module also provides :func:`max_min_yield_on_node`, the closed-form
"maximize the minimum yield for a fixed placement on one node" computation
that underlies both the binary-search refinement step and the ALLOCCAPS /
ALLOCWEIGHTS runtime policies of §6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .exceptions import InvalidAllocationError
from .instance import ProblemInstance
from .resources import FEASIBILITY_ATOL, FEASIBILITY_RTOL

__all__ = ["Allocation", "max_min_yield_on_node", "node_loads", "uniform_yield_demands"]

UNPLACED = -1


def uniform_yield_demands(instance: ProblemInstance, y: float) -> tuple[np.ndarray, np.ndarray]:
    """``(J, D)`` elementary and aggregate demands at uniform yield *y*."""
    sv = instance.services
    return sv.req_elem + y * sv.need_elem, sv.req_agg + y * sv.need_agg


def node_loads(instance: ProblemInstance, placement: np.ndarray,
               yields: np.ndarray) -> np.ndarray:
    """Aggregate load per node, shape ``(H, D)``.

    Services with placement ``UNPLACED`` contribute nothing.
    """
    sv = instance.services
    demands = sv.req_agg + yields[:, None] * sv.need_agg
    loads = np.zeros((instance.num_nodes, instance.dims))
    placed = placement >= 0
    # np.add.at accumulates duplicates correctly (fancy-index += would not).
    np.add.at(loads, placement[placed], demands[placed])
    return loads


def max_min_yield_on_node(cap_elem: np.ndarray, cap_agg: np.ndarray,
                          req_elem: np.ndarray, req_agg: np.ndarray,
                          need_elem: np.ndarray, need_agg: np.ndarray) -> float:
    """Largest uniform yield for the given services co-located on one node.

    Inputs are the node's ``(D,)`` capacity vectors and the ``(K, D)``
    requirement/need arrays of the K services placed there.  Returns the
    maximum *y* such that every elementary and aggregate constraint holds,
    clamped to [0, 1], or ``-1.0`` if even *y = 0* (requirements alone) is
    infeasible.

    At the max-min optimum all services share one uniform yield: granting
    the minimum-yield service more requires aggregate budget that must come
    from another service, which would then become the new minimum.  Hence
    the closed form: per-dimension aggregate headroom divided by aggregate
    need, intersected with each service's elementary headroom.
    """
    if req_elem.shape[0] == 0:
        return 1.0
    # Feasibility at y = 0.
    if (req_elem > cap_elem + FEASIBILITY_ATOL).any():
        return -1.0
    agg_req = req_agg.sum(axis=0)
    if (agg_req > cap_agg * (1 + FEASIBILITY_RTOL) + FEASIBILITY_ATOL).any():
        return -1.0

    y = 1.0
    # Elementary: r^e + y n^e <= c^e for every service and dimension.
    mask = need_elem > 0
    if mask.any():
        headroom = (cap_elem - req_elem)[mask] / need_elem[mask]
        y = min(y, headroom.min())
    # Aggregate: sum(r^a) + y sum(n^a) <= c^a per dimension.
    agg_need = need_agg.sum(axis=0)
    dmask = agg_need > 0
    if dmask.any():
        y = min(y, ((cap_agg - agg_req)[dmask] / agg_need[dmask]).min())
    return float(min(1.0, max(0.0, y)))


@dataclass
class Allocation:
    """A complete solution: node assignment and yield for every service."""

    instance: ProblemInstance
    placement: np.ndarray  # (J,) int64, node index or UNPLACED
    yields: np.ndarray     # (J,) float64 in [0, 1]

    def __post_init__(self) -> None:
        J = self.instance.num_services
        self.placement = np.asarray(self.placement, dtype=np.int64)
        self.yields = np.asarray(self.yields, dtype=np.float64)
        if self.placement.shape != (J,):
            raise InvalidAllocationError(
                f"placement shape {self.placement.shape} != ({J},)")
        if self.yields.shape != (J,):
            raise InvalidAllocationError(
                f"yields shape {self.yields.shape} != ({J},)")
        if ((self.placement < UNPLACED)
                | (self.placement >= self.instance.num_nodes)).any():
            raise InvalidAllocationError("placement contains out-of-range node index")
        if ((self.yields < -FEASIBILITY_ATOL)
                | (self.yields > 1.0 + FEASIBILITY_ATOL)).any():
            raise InvalidAllocationError("yields outside [0, 1]")

    @classmethod
    def uniform(cls, instance: ProblemInstance, placement: Sequence[int],
                y: float) -> "Allocation":
        """Allocation with the same yield for every placed service."""
        placement = np.asarray(placement, dtype=np.int64)
        yields = np.where(placement >= 0, float(y), 0.0)
        return cls(instance, placement, yields)

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        """True when every service is placed on some node."""
        return bool((self.placement >= 0).all())

    def minimum_yield(self) -> float:
        """The objective value: min yield over all services.

        Raises if any service is unplaced (an incomplete allocation has no
        defined objective; heuristics return ``None`` instead of building
        one).
        """
        if not self.complete:
            raise InvalidAllocationError("minimum_yield of incomplete allocation")
        return float(self.yields.min())

    def node_loads(self) -> np.ndarray:
        return node_loads(self.instance, self.placement, self.yields)

    # ------------------------------------------------------------------
    def validate(self, require_complete: bool = True) -> None:
        """Raise :class:`InvalidAllocationError` unless all constraints hold."""
        inst = self.instance
        if require_complete and not self.complete:
            raise InvalidAllocationError("allocation leaves services unplaced")
        placed = self.placement >= 0
        if not placed.any():
            return
        sv = inst.services
        hs = self.placement[placed]
        ys = self.yields[placed][:, None]
        elem_demand = sv.req_elem[placed] + ys * sv.need_elem[placed]
        elem_cap = inst.nodes.elementary[hs]
        tol = FEASIBILITY_RTOL * np.maximum(elem_cap, 1.0) + FEASIBILITY_ATOL
        bad = elem_demand > elem_cap + tol
        if bad.any():
            j = int(np.flatnonzero(bad.any(axis=1))[0])
            raise InvalidAllocationError(
                f"elementary capacity exceeded for service index {j} "
                f"(demand {elem_demand[j]}, capacity {elem_cap[j]})")
        loads = self.node_loads()
        agg_cap = inst.nodes.aggregate
        tol = FEASIBILITY_RTOL * np.maximum(agg_cap, 1.0) + FEASIBILITY_ATOL
        bad = loads > agg_cap + tol
        if bad.any():
            h = int(np.flatnonzero(bad.any(axis=1))[0])
            raise InvalidAllocationError(
                f"aggregate capacity exceeded on node {h} "
                f"(load {loads[h]}, capacity {agg_cap[h]})")

    def is_valid(self, require_complete: bool = True) -> bool:
        try:
            self.validate(require_complete=require_complete)
        except InvalidAllocationError:
            return False
        return True

    # ------------------------------------------------------------------
    def improve_yields(self) -> "Allocation":
        """Raise every node's services to that node's max-min uniform yield.

        Packing heuristics certify a *uniform* yield via binary search; the
        final allocation can usually do better on under-loaded nodes.  This
        post-pass recomputes, per node, the closed-form max-min yield of the
        services actually placed there, and never lowers any yield below the
        certified value.
        """
        inst = self.instance
        new_yields = self.yields.copy()
        for h in range(inst.num_nodes):
            members = np.flatnonzero(self.placement == h)
            if members.size == 0:
                continue
            sv = inst.services
            y = max_min_yield_on_node(
                inst.nodes.elementary[h], inst.nodes.aggregate[h],
                sv.req_elem[members], sv.req_agg[members],
                sv.need_elem[members], sv.need_agg[members])
            if y >= 0:
                new_yields[members] = np.maximum(new_yields[members], y)
        return Allocation(inst, self.placement.copy(), new_yields)
