"""Core problem model: nodes, services, instances, allocations (paper §2)."""

from .allocation import Allocation, max_min_yield_on_node, node_loads, UNPLACED
from .exceptions import (
    DimensionMismatchError,
    InfeasibleProblemError,
    InvalidAllocationError,
    InvalidCapacityError,
    InvalidServiceError,
    ReproError,
    SolverError,
)
from .instance import ProblemInstance
from .node import Node, NodeArray
from .priorities import apply_priorities, weighted_minimum_yield, weighted_yields
from .resources import VectorPair
from .service import Service, ServiceArray

__all__ = [
    "Allocation",
    "DimensionMismatchError",
    "InfeasibleProblemError",
    "InvalidAllocationError",
    "InvalidCapacityError",
    "InvalidServiceError",
    "Node",
    "NodeArray",
    "ProblemInstance",
    "ReproError",
    "Service",
    "ServiceArray",
    "SolverError",
    "UNPLACED",
    "VectorPair",
    "apply_priorities",
    "max_min_yield_on_node",
    "node_loads",
    "weighted_minimum_yield",
    "weighted_yields",
]
