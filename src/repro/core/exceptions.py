"""Exception hierarchy for the repro library.

Algorithms signal "no allocation found" by returning ``None`` (the paper
accounts for this as a *failure* in its success-rate metric, not an error).
Exceptions are reserved for genuinely invalid inputs or internal invariant
violations.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DimensionMismatchError",
    "InvalidCapacityError",
    "InvalidServiceError",
    "InvalidAllocationError",
    "InfeasibleProblemError",
    "SolverError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DimensionMismatchError(ReproError):
    """Vectors with incompatible resource-dimension counts were combined."""

    def __init__(self, expected: int, actual: int, what: str = "vector"):
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"{what} has {actual} resource dimensions, expected {expected}"
        )


class InvalidCapacityError(ReproError):
    """A node capacity vector is malformed (negative, or aggregate < elementary)."""


class InvalidServiceError(ReproError):
    """A service descriptor is malformed (negative requirement/need)."""


class InvalidAllocationError(ReproError):
    """An allocation violates structural constraints of the problem instance."""


class InfeasibleProblemError(ReproError):
    """Raised by exact solvers when the instance admits no valid allocation.

    Heuristics never raise this; they return ``None`` instead so the caller
    can account for failures.
    """


class SolverError(ReproError):
    """The back-end LP/MILP solver failed for reasons other than infeasibility."""
