"""Resource-vector primitives.

Every node capacity, service requirement, and service need in the paper is an
*ordered pair* of D-dimensional vectors: an **elementary** component (per
resource element, e.g. a single core) and an **aggregate** component (total
over all elements of that type).  This module provides the small amount of
shared machinery for validating and manipulating such pairs; the heavy
numerical work elsewhere operates on raw ``numpy`` arrays extracted from
these objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .exceptions import DimensionMismatchError, InvalidCapacityError

__all__ = [
    "FEASIBILITY_ATOL",
    "FEASIBILITY_RTOL",
    "STRICT_FIT_ATOL",
    "VectorPair",
    "as_vector",
    "check_same_dimensions",
]

# Numerical slack used throughout feasibility checks.  Capacity comparisons
# in the packing heuristics and allocation validation allow this much
# overshoot so that allocations constructed at the edge of feasibility (e.g.
# by the binary-search yield driver) are not rejected for round-off reasons.
FEASIBILITY_RTOL = 1e-9
FEASIBILITY_ATOL = 1e-9

# Absolute-only fit slack of the seed-faithful paths: the greedy/rounding/
# sharing element-fit checks, the yield-domain bound, and the incremental
# best-fit all ship with the seed implementation's 1e-12.  Deliberately
# tighter than the scaled ``capacity_tolerance()`` used by the packing
# kernels — widening it would shift golden-file results at feasibility
# boundaries, so the two tolerances stay distinct named constants.
STRICT_FIT_ATOL = 1e-12


def as_vector(values: Sequence[float] | np.ndarray | float, dims: int | None = None) -> np.ndarray:
    """Coerce *values* to a 1-D float64 array.

    A scalar is broadcast to ``dims`` entries (``dims`` must then be given).
    The returned array is always a fresh, C-contiguous copy so callers can
    mutate it without aliasing surprises.
    """
    if np.isscalar(values):
        if dims is None:
            raise ValueError("scalar vector value requires an explicit dims")
        return np.full(dims, float(values), dtype=np.float64)
    arr = np.array(values, dtype=np.float64, copy=True)
    if arr.ndim != 1:
        raise ValueError(f"resource vector must be 1-D, got shape {arr.shape}")
    if dims is not None and arr.shape[0] != dims:
        raise DimensionMismatchError(dims, arr.shape[0])
    return arr


def check_same_dimensions(*vectors: np.ndarray, what: str = "vector") -> int:
    """Return the common length of *vectors*, raising on mismatch."""
    if not vectors:
        raise ValueError("need at least one vector")
    dims = vectors[0].shape[0]
    for v in vectors[1:]:
        if v.shape[0] != dims:
            raise DimensionMismatchError(dims, v.shape[0], what=what)
    return dims


@dataclass(frozen=True)
class VectorPair:
    """An (elementary, aggregate) pair of D-dimensional resource vectors.

    Invariants enforced at construction:

    * both vectors have the same dimension count;
    * all entries are finite and non-negative;
    * ``aggregate >= elementary`` component-wise when ``require_dominance``
      (true for capacities: a node's total capacity in a dimension is at
      least the capacity of one element; service requirement/need pairs also
      satisfy this in the paper's model, where the aggregate counts all
      virtual elements).

    Note the paper explicitly does *not* require the aggregate to be an
    integer multiple of the elementary value, and neither do we.
    """

    elementary: np.ndarray
    aggregate: np.ndarray
    require_dominance: bool = field(default=True, repr=False)

    def __post_init__(self) -> None:
        elem = as_vector(self.elementary)
        agg = as_vector(self.aggregate)
        check_same_dimensions(elem, agg, what="VectorPair component")
        if not (np.isfinite(elem).all() and np.isfinite(agg).all()):
            raise InvalidCapacityError("vector pair contains non-finite entries")
        if (elem < 0).any() or (agg < 0).any():
            raise InvalidCapacityError("vector pair contains negative entries")
        if self.require_dominance and (agg < elem - FEASIBILITY_ATOL).any():
            raise InvalidCapacityError(
                f"aggregate {agg} is smaller than elementary {elem} in some dimension"
            )
        # Freeze the arrays: dataclass(frozen=True) protects rebinding only.
        elem.setflags(write=False)
        agg.setflags(write=False)
        object.__setattr__(self, "elementary", elem)
        object.__setattr__(self, "aggregate", agg)

    @property
    def dims(self) -> int:
        return self.elementary.shape[0]

    def scaled(self, factor: float | np.ndarray) -> "VectorPair":
        """Return a new pair with both components multiplied by *factor*.

        *factor* may be a scalar or a per-dimension vector.
        """
        return VectorPair(self.elementary * factor, self.aggregate * factor,
                          require_dominance=self.require_dominance)

    def with_aggregate(self, aggregate: Iterable[float]) -> "VectorPair":
        """Return a copy with the aggregate component replaced."""
        return VectorPair(self.elementary, as_vector(aggregate, self.dims),
                          require_dominance=self.require_dominance)

    def with_elementary(self, elementary: Iterable[float]) -> "VectorPair":
        """Return a copy with the elementary component replaced."""
        return VectorPair(as_vector(elementary, self.dims), self.aggregate,
                          require_dominance=self.require_dominance)

    def __add__(self, other: "VectorPair") -> "VectorPair":
        if not isinstance(other, VectorPair):
            return NotImplemented
        return VectorPair(self.elementary + other.elementary,
                          self.aggregate + other.aggregate,
                          require_dominance=False)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorPair):
            return NotImplemented
        return (np.array_equal(self.elementary, other.elementary)
                and np.array_equal(self.aggregate, other.aggregate))

    def __hash__(self) -> int:
        return hash((self.elementary.tobytes(), self.aggregate.tobytes()))
