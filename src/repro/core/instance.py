"""Problem instance: a platform plus a set of services to place.

The instance is the single object handed to every algorithm in
:mod:`repro.algorithms` and :mod:`repro.lp`.  It owns column-oriented
(``numpy``) views of the nodes and services so that algorithms never touch
per-object Python attributes in their hot loops.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .exceptions import DimensionMismatchError
from .node import Node, NodeArray
from .service import Service, ServiceArray

__all__ = ["ProblemInstance"]


class ProblemInstance:
    """An (H nodes, J services, D dimensions) resource-allocation problem.

    Parameters
    ----------
    nodes:
        The platform, as ``Node`` objects or a pre-built ``NodeArray``.
    services:
        The workload, as ``Service`` objects or a pre-built ``ServiceArray``.

    Attributes
    ----------
    nodes: NodeArray
    services: ServiceArray
    """

    __slots__ = ("nodes", "services")

    def __init__(self,
                 nodes: Iterable[Node] | NodeArray,
                 services: Iterable[Service] | ServiceArray):
        self.nodes = nodes if isinstance(nodes, NodeArray) else NodeArray(nodes)
        self.services = (services if isinstance(services, ServiceArray)
                         else ServiceArray(services))
        if self.nodes.dims != self.services.dims:
            raise DimensionMismatchError(self.nodes.dims, self.services.dims,
                                         what="services")

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_services(self) -> int:
        return len(self.services)

    @property
    def dims(self) -> int:
        return self.nodes.dims

    # ------------------------------------------------------------------
    # Aggregate statistics used by workload scaling and sanity checks.
    # ------------------------------------------------------------------
    def total_capacity(self) -> np.ndarray:
        """Sum of aggregate node capacities per dimension, shape ``(D,)``."""
        return self.nodes.aggregate.sum(axis=0)

    def total_requirements(self) -> np.ndarray:
        """Sum of aggregate service requirements per dimension, shape ``(D,)``."""
        return self.services.req_agg.sum(axis=0)

    def total_needs(self) -> np.ndarray:
        """Sum of aggregate service needs per dimension, shape ``(D,)``."""
        return self.services.need_agg.sum(axis=0)

    def yield_upper_bound(self) -> float:
        """Cheap capacity-based upper bound on the maximum minimum yield.

        Ignores placement entirely: at uniform yield *y* the total demand
        ``Σ(r^a + y n^a)`` cannot exceed total capacity in any dimension.
        The LP relaxation (:mod:`repro.lp`) gives a tighter bound; this one
        is used to seed the binary search.
        """
        req = self.total_requirements()
        need = self.total_needs()
        cap = self.total_capacity()
        bound = 1.0
        for d in range(self.dims):
            if need[d] > 0:
                bound = min(bound, (cap[d] - req[d]) / need[d])
        return max(0.0, min(1.0, bound))

    def replace_services(self, services: ServiceArray) -> "ProblemInstance":
        """New instance with the same platform and different services.

        Used by the scaling pipeline (memory-slack families share one
        platform) and the error-perturbation experiments.
        """
        return ProblemInstance(self.nodes, services)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ProblemInstance(H={self.num_nodes}, J={self.num_services}, "
                f"D={self.dims})")
