"""Service (virtual machine workload) model.

A service *j* is described by two ordered vector pairs (§2):

* requirements ``(r^e_j, r^a_j)`` — the allocation needed to run at the
  minimum acceptable service level; allocation fails if unmet;
* needs ``(n^e_j, n^a_j)`` — the *additional* allocation needed to reach
  maximum performance (yield 1.0) relative to the reference machine.

The allocation granted at yield ``y`` is ``(r^e + y n^e, r^a + y n^a)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .exceptions import InvalidServiceError
from .resources import STRICT_FIT_ATOL, VectorPair, as_vector

__all__ = ["Service", "ServiceArray"]


@dataclass(frozen=True)
class Service:
    """A hosted service with rigid requirements and fluid needs."""

    requirements: VectorPair
    needs: VectorPair
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.requirements.dims != self.needs.dims:
            raise InvalidServiceError(
                f"requirements have {self.requirements.dims} dims, "
                f"needs have {self.needs.dims}")

    @classmethod
    def from_vectors(cls,
                     req_elementary: Sequence[float],
                     req_aggregate: Sequence[float],
                     need_elementary: Sequence[float],
                     need_aggregate: Sequence[float],
                     name: str = "") -> "Service":
        req = VectorPair(as_vector(req_elementary), as_vector(req_aggregate),
                         require_dominance=False)
        need = VectorPair(as_vector(need_elementary), as_vector(need_aggregate),
                          require_dominance=False)
        return cls(req, need, name=name)

    @property
    def dims(self) -> int:
        return self.requirements.dims

    def allocation_at_yield(self, y: float) -> VectorPair:
        """Resource allocation ``(r^e + y n^e, r^a + y n^a)`` for yield *y*."""
        if not 0.0 <= y <= 1.0 + STRICT_FIT_ATOL:
            raise InvalidServiceError(f"yield must lie in [0, 1], got {y}")
        return VectorPair(
            self.requirements.elementary + y * self.needs.elementary,
            self.requirements.aggregate + y * self.needs.aggregate,
            require_dominance=False,
        )


class ServiceArray:
    """Column-oriented view of a service collection.

    Exposes four read-only ``(J, D)`` arrays: ``req_elem``, ``req_agg``,
    ``need_elem``, ``need_agg``.  The vector-packing and LP layers work
    exclusively on these arrays; ``Service`` objects are the user-facing
    construction API.
    """

    __slots__ = ("req_elem", "req_agg", "need_elem", "need_agg", "names")

    def __init__(self, services: Iterable[Service]):
        services = list(services)
        if not services:
            raise InvalidServiceError("ServiceArray requires at least one service")
        dims = services[0].dims
        for s in services:
            if s.dims != dims:
                raise InvalidServiceError(
                    f"all services must share dimension count {dims}, got {s.dims}")
        self.req_elem = np.ascontiguousarray(
            np.stack([s.requirements.elementary for s in services]))
        self.req_agg = np.ascontiguousarray(
            np.stack([s.requirements.aggregate for s in services]))
        self.need_elem = np.ascontiguousarray(
            np.stack([s.needs.elementary for s in services]))
        self.need_agg = np.ascontiguousarray(
            np.stack([s.needs.aggregate for s in services]))
        for arr in (self.req_elem, self.req_agg, self.need_elem, self.need_agg):
            arr.setflags(write=False)
        self.names = tuple(s.name for s in services)

    @classmethod
    def from_arrays(cls, req_elem: np.ndarray, req_agg: np.ndarray,
                    need_elem: np.ndarray, need_agg: np.ndarray,
                    names: Sequence[str] | None = None) -> "ServiceArray":
        """Build directly from ``(J, D)`` arrays without per-service objects.

        Used by the workload generators, which produce thousands of services
        at a time; going through ``Service`` objects would dominate
        generation cost.
        """
        obj = cls.__new__(cls)
        arrays = []
        shape = None
        for name, a in (("req_elem", req_elem), ("req_agg", req_agg),
                        ("need_elem", need_elem), ("need_agg", need_agg)):
            a = np.ascontiguousarray(np.asarray(a, dtype=np.float64))
            if a.ndim != 2:
                raise InvalidServiceError(f"{name} must be 2-D, got shape {a.shape}")
            if shape is None:
                shape = a.shape
            elif a.shape != shape:
                raise InvalidServiceError(
                    f"{name} shape {a.shape} differs from {shape}")
            if not np.isfinite(a).all() or (a < 0).any():
                raise InvalidServiceError(f"{name} has negative or non-finite entries")
            a = a.copy()
            a.setflags(write=False)
            arrays.append(a)
        obj.req_elem, obj.req_agg, obj.need_elem, obj.need_agg = arrays
        if names is None:
            obj.names = tuple(f"service-{j}" for j in range(shape[0]))
        else:
            names = tuple(names)
            if len(names) != shape[0]:
                raise InvalidServiceError(
                    f"{len(names)} names for {shape[0]} services")
            obj.names = names
        return obj

    def __len__(self) -> int:
        return self.req_elem.shape[0]

    @property
    def dims(self) -> int:
        return self.req_elem.shape[1]

    def service(self, j: int) -> Service:
        """Materialize service *j* back into an object."""
        return Service(
            VectorPair(self.req_elem[j], self.req_agg[j], require_dominance=False),
            VectorPair(self.need_elem[j], self.need_agg[j], require_dominance=False),
            name=self.names[j],
        )

    def allocation_at_yield(self, yields: np.ndarray | float) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(elementary, aggregate)`` allocations for given yields.

        *yields* is a scalar (uniform yield, as in the binary-search driver)
        or a length-J array.  Returns two ``(J, D)`` arrays.
        """
        y = np.asarray(yields, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]
        elem = self.req_elem + y * self.need_elem
        agg = self.req_agg + y * self.need_agg
        return elem, agg
