"""Report renderers for ``repro check``.

Two formats:

* ``text`` — one ``path:line:col RULE message`` line per finding,
  grouped notes for suppressed/unused counts; for terminals and CI logs.
* ``json`` — a versioned, schema-stable document for the nightly
  artifact and downstream tooling.  Key order and field names are pinned
  by ``tests/analysis/test_reporters.py``; bump ``SCHEMA_VERSION`` when
  they change.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .core import CheckResult, Finding, Rule

__all__ = ["SCHEMA_VERSION", "render_json", "render_text"]

SCHEMA_VERSION = 1


def _finding_dict(finding: "Finding", suppressed: bool) -> dict:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "suppressed": suppressed,
    }


def render_json(result: "CheckResult", rules: tuple["Rule", ...],
                strict: bool = False) -> str:
    """The machine-readable report (sorted, stable key order)."""
    findings = [_finding_dict(f, False) for f in result.findings]
    findings += [_finding_dict(f, True) for f in result.suppressed]
    findings.sort(key=lambda d: (d["path"], d["line"], d["col"], d["rule"]))
    doc = {
        "schema_version": SCHEMA_VERSION,
        "strict": strict,
        "rules": [{"id": r.id, "name": r.name, "summary": r.summary}
                  for r in rules],
        "findings": findings,
        "unused_suppressions": [_finding_dict(f, False)
                                for f in result.unused_suppressions],
        "counts": {
            "files": result.files,
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "unused_suppressions": len(result.unused_suppressions),
        },
        "exit_code": result.exit_code(strict=strict),
    }
    return json.dumps(doc, indent=2, sort_keys=False)


def render_text(result: "CheckResult", rules: tuple["Rule", ...],
                strict: bool = False, verbose: bool = False) -> str:
    """The human-readable report."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(f"{finding.location()} {finding.rule} "
                     f"{finding.message}")
    if strict or verbose:
        for finding in result.unused_suppressions:
            lines.append(f"{finding.location()} {finding.rule} "
                         f"{finding.message}")
    if verbose:
        for finding in result.suppressed:
            lines.append(f"{finding.location()} {finding.rule} "
                         f"[suppressed] {finding.message}")
    n = len(result.findings)
    unused = len(result.unused_suppressions)
    summary = (f"repro check: {result.files} files, "
               f"{len(rules)} rules, {n} finding{'s' if n != 1 else ''}")
    if result.suppressed:
        summary += f", {len(result.suppressed)} suppressed"
    if unused and (strict or verbose):
        summary += f", {unused} unused suppression{'s' if unused != 1 else ''}"
    lines.append(summary)
    return "\n".join(lines)
