"""The static-analysis engine: modules, rules, findings, suppression.

``repro check`` parses every library module once into a
:class:`Module` (source, AST, per-line suppression table), hands the
whole :class:`Project` to each registered :class:`Rule`, and collects
:class:`Finding` records.  Rules see the *project*, not one file at a
time, because the concurrency rules need a cross-module view (the
``service/`` call graph).

Suppression follows the repo-specific ``noqa`` dialect::

    loads = rebuild(x)          # repro: noqa[CC201]
    print(port, flush=True)     # repro: noqa[LY301,DT102]
    anything_at_all()           # repro: noqa

A bare ``# repro: noqa`` silences every rule on that line; the
bracketed form silences only the listed rule ids.  ``--strict`` runs
additionally report suppression comments that silenced nothing (rule id
``SUP000``), so stale escapes cannot accumulate.

Fixture files (the self-test corpus under ``analysis/fixtures/``) carry
a pragma that assigns them a *virtual* path, so path-scoped rules treat
the snippet as though it lived inside the library tree::

    # repro-fixture: rule=DT104 count=2 path=repro/algorithms/example.py
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "EngineError",
    "Finding",
    "Module",
    "Project",
    "Rule",
    "all_rules",
    "dotted_name",
    "load_module",
    "register_rule",
    "run_check",
    "rule_ids",
]

#: Marks a bare rule-less suppression (silence every rule on the line).
_ALL_RULES = frozenset({"*"})

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE)
_FIXTURE_RE = re.compile(r"#\s*repro-fixture:\s*(?P<body>.+)")


class EngineError(RuntimeError):
    """An internal analysis failure (unreadable/unparseable input).

    Distinct from findings: ``repro check`` exits 2 on this, 1 on
    findings, 0 when clean.
    """


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"


@dataclass
class Module:
    """One parsed source file plus its suppression table."""

    path: Path
    relpath: str  # virtual posix path, e.g. "repro/core/node.py"
    source: str
    tree: ast.Module
    lines: list[str]
    #: line number -> rule ids suppressed there ({"*"} = all of them).
    suppressions: dict[int, frozenset[str]]
    fixture: dict[str, str] = field(default_factory=dict)

    def in_package(self, *parts: str) -> bool:
        """True when the module lives under ``repro/<parts...>/``."""
        prefix = "/".join(("repro",) + parts) + "/"
        return self.relpath.startswith(prefix)

    def is_file(self, relpath: str) -> bool:
        return self.relpath == relpath


@dataclass
class Project:
    """Every module of one ``repro check`` run."""

    modules: list[Module]

    def by_path(self, relpath: str) -> Module | None:
        for mod in self.modules:
            if mod.relpath == relpath:
                return mod
        return None


class Rule:
    """Base class: subclasses declare an id and scan the project.

    ``id`` is the stable machine name used in reports and suppression
    comments; ``name`` is the human slug; ``summary`` one line for
    ``repro check --list-rules``.
    """

    id: str = ""
    name: str = ""
    summary: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(path=module.relpath,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule=self.id, message=message)


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register one rule."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by id (imports the rule modules)."""
    from . import rules  # noqa: F401  (registration side effect)
    return tuple(rule for _, rule in sorted(_REGISTRY.items()))


def rule_ids() -> tuple[str, ...]:
    return tuple(rule.id for rule in all_rules())


# ---------------------------------------------------------------------------
# Parsing


def _parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Per-line suppression table from ``# repro: noqa[...]`` comments.

    Comments are found with the tokenizer, not a regex over raw lines,
    so a ``# repro: noqa`` inside a string literal does not suppress.
    """
    table: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if not match:
                continue
            rules = match.group("rules")
            if rules is None:
                ids = _ALL_RULES
            else:
                ids = frozenset(r.strip().upper()
                                for r in rules.split(",") if r.strip())
            table[tok.start[0]] = table.get(tok.start[0], frozenset()) | ids
    except tokenize.TokenizeError:  # pragma: no cover - parse already failed
        pass
    return table


def _parse_fixture_pragma(source: str) -> dict[str, str]:
    """``# repro-fixture: k=v k=v`` header (first ten lines only)."""
    for line in source.splitlines()[:10]:
        match = _FIXTURE_RE.search(line)
        if match:
            pragma: dict[str, str] = {}
            for part in match.group("body").split():
                key, eq, value = part.partition("=")
                if eq:
                    pragma[key.strip()] = value.strip()
            return pragma
    return {}


def _relpath_for(path: Path) -> str:
    """The module's path relative to the ``repro`` package root.

    Files outside any ``repro`` tree keep their name — path-scoped
    rules simply do not apply to them.
    """
    parts = path.resolve().parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.name


def load_module(path: Path) -> Module:
    """Read + parse one file; raises :class:`EngineError` on failure."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise EngineError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise EngineError(
            f"cannot parse {path}: line {exc.lineno}: {exc.msg}") from exc
    fixture = _parse_fixture_pragma(source)
    relpath = fixture.get("path") or _relpath_for(path)
    return Module(path=path, relpath=relpath, source=source, tree=tree,
                  lines=source.splitlines(),
                  suppressions=_parse_suppressions(source),
                  fixture=fixture)


#: Directories never scanned: the fixture corpus is known-bad on purpose.
_EXCLUDED_DIRS = {"__pycache__", "fixtures"}


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand *paths* (files or directories) to .py files, sorted."""
    seen = set()
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if _EXCLUDED_DIRS.isdisjoint(sub.parts) and sub not in seen:
                    seen.add(sub)
                    yield sub
        elif path.suffix == ".py":
            if path not in seen:
                seen.add(path)
                yield path
        else:
            raise EngineError(f"not a python file or directory: {path}")


# ---------------------------------------------------------------------------
# Running


@dataclass
class CheckResult:
    """Everything one run produced, pre-split by suppression state."""

    findings: list[Finding]
    suppressed: list[Finding]
    unused_suppressions: list[Finding]
    files: int

    def exit_code(self, strict: bool = False) -> int:
        active = list(self.findings)
        if strict:
            active += self.unused_suppressions
        return 1 if active else 0


def _is_suppressed(finding: Finding, module: Module) -> bool:
    ids = module.suppressions.get(finding.line)
    return bool(ids) and ("*" in ids or finding.rule in ids)


def run_check(paths: Sequence[Path],
              rules: Iterable[Rule] | None = None,
              progress: Callable[[Path], None] | None = None) -> CheckResult:
    """Run *rules* (default: all) over *paths*; split by suppression."""
    chosen = tuple(rules) if rules is not None else all_rules()
    modules = []
    for path in iter_python_files(paths):
        if progress is not None:
            progress(path)
        modules.append(load_module(path))
    project = Project(modules=modules)
    by_path = {m.relpath: m for m in modules}

    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for rule in chosen:
        for finding in rule.check(project):
            module = by_path.get(finding.path)
            if module is not None and _is_suppressed(finding, module):
                suppressed.append(finding)
            else:
                findings.append(finding)

    used = {(f.path, f.line) for f in suppressed}
    unused: list[Finding] = []
    for module in modules:
        for line, ids in sorted(module.suppressions.items()):
            if (module.relpath, line) not in used:
                listed = "all rules" if "*" in ids else ", ".join(sorted(ids))
                unused.append(Finding(
                    path=module.relpath, line=line, col=0, rule="SUP000",
                    message=f"suppression comment silences nothing "
                            f"({listed})"))
    return CheckResult(findings=sorted(findings),
                       suppressed=sorted(suppressed),
                       unused_suppressions=sorted(unused),
                       files=len(modules))


# ---------------------------------------------------------------------------
# Shared AST helpers used by several rules


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_calls(tree: ast.AST) -> Iterator[tuple[ast.Call, str]]:
    """Every call with a resolvable dotted function name."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None:
                yield node, name


def parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """child -> parent for every node (rules that need ancestors)."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents
