"""Self-test corpus runner: every bad fixture must trip exactly its rule.

Each file under ``analysis/fixtures/`` declares its contract in a
pragma::

    # repro-fixture: rule=DT104 count=2 path=repro/algorithms/example.py

``repro check --selftest`` runs *all* rules over each fixture (under its
virtual path) and fails when

* the declared rule fires a different number of times than ``count``, or
* any *other* rule fires at all (fixtures must be surgical — a bad
  snippet that trips two rules can't prove either one).

This is the executable spec for the rule set: deleting a rule's logic
makes its bad fixture report 0 findings and the self-test fail, so CI
catches a silently-disabled rule just like a regression.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from .core import EngineError, all_rules, load_module, run_check

__all__ = ["fixture_dir", "iter_fixtures", "run_selftest"]


def fixture_dir() -> Path:
    return Path(__file__).resolve().parent / "fixtures"


def iter_fixtures() -> Iterator[Path]:
    root = fixture_dir()
    if not root.is_dir():  # pragma: no cover - packaging error
        raise EngineError(f"fixture corpus missing: {root}")
    yield from sorted(root.glob("*.py"))


def run_selftest() -> list[str]:
    """Run the corpus; return human-readable failures (empty = pass)."""
    failures: list[str] = []
    rules = all_rules()
    known = {rule.id for rule in rules}
    seen_rules: set[str] = set()
    fixtures = list(iter_fixtures())
    if not fixtures:
        return ["fixture corpus is empty"]
    for path in fixtures:
        result = run_check([path], rules=rules)
        pragma = load_module(path).fixture
        rule_id = pragma.get("rule", "").upper()
        if rule_id not in known:
            failures.append(f"{path.name}: pragma names unknown rule "
                            f"{rule_id or '<missing>'!r}")
            continue
        try:
            expected = int(pragma.get("count", ""))
        except ValueError:
            failures.append(f"{path.name}: pragma count is not an integer")
            continue
        seen_rules.add(rule_id)
        got = [f for f in result.findings if f.rule == rule_id]
        others = [f for f in result.findings if f.rule != rule_id]
        if len(got) != expected:
            failures.append(
                f"{path.name}: expected {expected} {rule_id} finding(s), "
                f"got {len(got)}"
                + (": " + "; ".join(f"line {f.line}" for f in got)
                   if got else ""))
        for other in others:
            failures.append(
                f"{path.name}: unexpected {other.rule} at line "
                f"{other.line}: {other.message} (fixtures must trip "
                "exactly their own rule)")
    uncovered = sorted(known - seen_rules)
    if uncovered:
        failures.append(
            "rules with no fixture coverage: " + ", ".join(uncovered))
    return failures
