"""The ``repro check`` subcommand.

Machine-friendly contract (mirrors ``repro.analysis.ratchet``):

* exit 0 — clean (no unsuppressed findings; self-test passed);
* exit 1 — findings (or self-test failures);
* exit 2 — internal error (unreadable path, unparseable file, unknown
  rule id).

Output is tolerant of ``| head`` (``BrokenPipeError`` exits 0, matching
``repro obs report``).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Any, Sequence

from .core import EngineError, Rule, all_rules, run_check
from .reporters import render_json, render_text
from .selftest import run_selftest

__all__ = ["default_paths", "resolve_rules", "run_cli"]

#: searched upward from cwd to find the library root to scan.
_ROOT_MARKERS = ("src/repro", "pyproject.toml")


def default_paths() -> list[Path]:
    """``src/repro`` relative to the repo root, else the installed pkg.

    Walks upward from the working directory looking for ``src/repro``;
    falls back to the package's own location so ``repro check`` works
    from an installed wheel too.
    """
    current = Path.cwd()
    for candidate in (current, *current.parents):
        src = candidate / "src" / "repro"
        if src.is_dir():
            return [src]
    return [Path(__file__).resolve().parents[1]]


def resolve_rules(spec: str | None) -> tuple[Rule, ...]:
    """``--rules`` argument -> rule objects.

    Accepts comma-separated rule ids (``DT104,CC201``), slugs
    (``named-tolerances``), or family prefixes (``DT``, ``determinism``).
    """
    rules = all_rules()
    if not spec:
        return rules
    families = {"determinism": "DT", "concurrency": "CC", "layering": "LY",
                "obs": "LY"}
    chosen = []
    for raw in spec.split(","):
        token = raw.strip()
        if not token:
            continue
        key = token.upper()
        prefix = families.get(token.lower(), key)
        matched = [r for r in rules
                   if r.id == key or r.name == token.lower()
                   or r.id.startswith(prefix)]
        if not matched:
            raise EngineError(
                f"unknown rule {token!r}; known: "
                + ", ".join(f"{r.id}({r.name})" for r in rules))
        chosen.extend(m for m in matched if m not in chosen)
    return tuple(chosen)


def _print_flushed(text: str) -> None:
    print(text, flush=True)


def run_cli(args: argparse.Namespace) -> int:
    """Body of ``repro check`` (argparse namespace in, exit code out)."""
    try:
        if args.list_rules:
            for rule in all_rules():
                _print_flushed(f"{rule.id}  {rule.name}\n    {rule.summary}")
            return 0
        if args.selftest:
            failures = run_selftest()
            for failure in failures:
                print(f"selftest: {failure}", file=sys.stderr)
            if failures:
                n = len(failures)
                _print_flushed(f"repro check --selftest: FAILED "
                               f"({n} problem{'s' if n != 1 else ''})")
                return 1
            _print_flushed("repro check --selftest: ok")
            return 0

        rules = resolve_rules(args.rules)
        paths = ([Path(p) for p in args.paths] if args.paths
                 else default_paths())
        result = run_check(paths, rules=rules)
        if args.format == "json":
            _print_flushed(render_json(result, rules, strict=args.strict))
        else:
            _print_flushed(render_text(result, rules, strict=args.strict,
                                       verbose=args.verbose))
        return result.exit_code(strict=args.strict)
    except BrokenPipeError:  # `repro check | head` is normal use
        os.close(sys.stdout.fileno())
        return 0
    except EngineError as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2


def add_check_arguments(sub: Any) -> None:
    """Attach the ``check`` subparser (called from :mod:`repro.cli`)."""
    ck = sub.add_parser(
        "check",
        help="project-aware static analysis: determinism, lock "
             "discipline, layering (exit 0 clean / 1 findings / "
             "2 internal error)")
    ck.add_argument("paths", nargs="*", metavar="PATH",
                    help="files or directories to analyze "
                         "(default: src/repro)")
    ck.add_argument("--rules", default=None, metavar="IDS",
                    help="comma-separated rule ids, slugs, or families "
                         "(e.g. DT104,concurrency); default: all")
    ck.add_argument("--format", choices=("text", "json"), default="text",
                    help="report format (json is schema-stable; the "
                         "nightly workflow archives it)")
    ck.add_argument("--strict", action="store_true",
                    help="also fail on suppression comments that "
                         "silence nothing (SUP000)")
    ck.add_argument("--verbose", action="store_true",
                    help="also list suppressed findings")
    ck.add_argument("--selftest", action="store_true",
                    help="run the fixture corpus: every known-bad "
                         "snippet must trip exactly its rule")
    ck.add_argument("--list-rules", action="store_true",
                    help="print the registered rules and exit")


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover
    """``python -m repro.analysis.cli`` standalone entry point."""
    parser = argparse.ArgumentParser(prog="repro-check")
    sub = parser.add_subparsers(dest="command", required=True)
    add_check_arguments(sub)
    return run_cli(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
