"""The mypy strict-typing ratchet.

``mypy-ratchet.txt`` (repo root) lists the modules that are fully typed
and must pass ``mypy --strict`` forever — the ratchet only turns one
way: once a module is listed, a regression fails CI; untyped modules are
simply not listed yet (and so cannot regress the gate).  To lock a newly
typed module in, add its path to the ratchet file.

Run with ``python -m repro.analysis.ratchet`` (CI does, with
``--require``).  mypy is an optional dev dependency: without
``--require``/``REPRO_REQUIRE_MYPY`` the runner *skips* (exit 0, with a
message) when mypy is not importable, so the check degrades gracefully
on minimal installs.

Exit codes match ``repro check``: 0 clean or skipped, 1 type errors,
2 internal error (missing ratchet file, mypy crash).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path
from typing import Sequence

__all__ = ["DEFAULT_RATCHET", "load_ratchet", "main", "mypy_available"]

DEFAULT_RATCHET = "mypy-ratchet.txt"

#: Strictness flags applied to every ratcheted module.  Full
#: ``--strict``; imports outside the ratcheted set are followed
#: silently so an untyped neighbour doesn't fail a typed module's run.
MYPY_FLAGS = (
    "--strict",
    "--no-warn-unused-ignores",
    "--follow-imports=silent",
    "--no-error-summary",
)


def load_ratchet(path: str | Path) -> list[str]:
    """Module paths from the ratchet file (comments/blank lines skipped)."""
    text = Path(path).read_text(encoding="utf-8")
    entries: list[str] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            entries.append(line)
    return entries


def mypy_available() -> bool:
    try:
        import mypy  # noqa: F401
    except ImportError:
        return False
    return True


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    require = os.environ.get("REPRO_REQUIRE_MYPY", "") not in ("", "0")
    ratchet = DEFAULT_RATCHET
    rest: list[str] = []
    while argv:
        arg = argv.pop(0)
        if arg == "--require":
            require = True
        elif arg == "--ratchet":
            if not argv:
                print("ratchet: --ratchet needs a path", file=sys.stderr)
                return 2
            ratchet = argv.pop(0)
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            rest.append(arg)
    if rest:
        print(f"ratchet: unknown arguments {rest}", file=sys.stderr)
        return 2

    try:
        entries = load_ratchet(ratchet)
    except OSError as exc:
        print(f"ratchet: cannot read {ratchet}: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(f"ratchet: {ratchet} lists no modules", file=sys.stderr)
        return 2
    missing = [e for e in entries if not Path(e).exists()]
    if missing:
        print("ratchet: listed modules do not exist: "
              + ", ".join(missing), file=sys.stderr)
        return 2

    if not mypy_available():
        if require:
            print("ratchet: mypy is required (--require/REPRO_REQUIRE_MYPY)"
                  " but not installed", file=sys.stderr)
            return 2
        print(f"ratchet: mypy not installed; skipping {len(entries)} "
              "ratcheted modules (pip install mypy to run)")
        return 0

    cmd = [sys.executable, "-m", "mypy", *MYPY_FLAGS, *entries]
    proc = subprocess.run(cmd)
    if proc.returncode == 0:
        print(f"ratchet: OK ({len(entries)} modules strict-typed)")
        return 0
    if proc.returncode == 1:
        print(f"ratchet: FAILED — a ratcheted module regressed "
              f"(see errors above); the ratchet only turns one way",
              file=sys.stderr)
        return 1
    print(f"ratchet: mypy exited {proc.returncode}", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
