"""Rule registry: importing this package registers every shipped rule.

Four families encode the repo's real invariants:

* determinism (``DT1xx``) — seeded RNG, monotonic clocks, ordered
  fingerprints, named tolerances;
* concurrency (``CC2xx``) — service lock discipline, picklable pool
  workers;
* layering (``LY3xx``) — no print in library code, metrics through the
  obs registry, leaf kernels;
* robustness (``RB4xx``) — no swallowed exceptions or hand-rolled retry
  loops on the failure paths (``service/``, ``dynamic/``).

Writing a new rule: subclass :class:`repro.analysis.core.Rule`, decorate
with :func:`repro.analysis.core.register_rule`, import the module here,
and add a good/bad fixture pair under ``analysis/fixtures/`` — the
self-test (``repro check --selftest``) fails until the bad fixture trips
exactly the new rule.
"""

from . import concurrency, determinism, layering, robustness

__all__ = ["concurrency", "determinism", "layering", "robustness"]
