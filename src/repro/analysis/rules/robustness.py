"""Robustness rules (RB4xx).

``RB401`` — failure paths in ``repro/service/`` and ``repro/dynamic/``
must not swallow or hand-roll recovery.  These are the packages whose
whole contract is *surviving* faults (journal replay, solver retries,
node churn), so an invisible exception is a correctness bug, not a
style nit.  Three shapes are flagged:

* a bare ``except:`` — catches ``SystemExit``/``KeyboardInterrupt`` and
  makes the fault-injection ``os._exit`` crash hooks unreliable;
* ``except Exception:`` / ``except BaseException:`` whose body is only
  ``pass``/``...`` — the fault disappears with no log, no metric, no
  rollback;
* a loop whose ``try`` handler ``continue``s — a hand-rolled retry.
  Retries must go through :func:`repro.util.retry.retry_bounded`, the
  *named bounded-backoff helper*, so every retry is budgeted, observable
  (``repro_solve_retries_total``), and deterministic under test.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Module, Project, Rule, register_rule

__all__ = ["FailurePathDisciplineRule"]

#: Packages whose error handling the rule audits.
_AUDITED_PACKAGES = ("service", "dynamic")

#: Exception names whose silent capture is never acceptable.
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
#: Nodes that own their own control flow — a walk rooted at a loop must
#: not descend into them (their continues/tries belong to them).
_SCOPE_BARRIERS = _LOOPS + (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.Lambda)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """True for ``except Exception`` / ``except BaseException``."""
    types: list[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        types = list(handler.type.elts)
    elif handler.type is not None:
        types = [handler.type]
    else:
        return True
    for node in types:
        if isinstance(node, ast.Name) and node.id in _BROAD_EXCEPTIONS:
            return True
    return False


def _body_is_silent(body: list[ast.stmt]) -> bool:
    """True when the handler body does nothing: ``pass`` / ``...`` only."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and \
                isinstance(stmt.value, ast.Constant) and \
                stmt.value.value is Ellipsis:
            continue
        return False
    return True


def _walk_same_scope(roots: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk *roots* without crossing loop or function boundaries."""
    stack: list[ast.AST] = list(roots)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, _SCOPE_BARRIERS):
                stack.append(child)


@register_rule
class FailurePathDisciplineRule(Rule):
    id = "RB401"
    name = "no-silent-failure-paths"
    summary = ("repro/service/ and repro/dynamic/ may not swallow "
               "exceptions (bare/broad except with an empty body) or "
               "hand-roll retry loops — use repro.util.retry."
               "retry_bounded")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not any(module.in_package(pkg)
                       for pkg in _AUDITED_PACKAGES):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ExceptHandler):
                    yield from self._check_handler(module, node)
                elif isinstance(node, _LOOPS):
                    yield from self._check_loop(module, node)

    def _check_handler(self, module: Module,
                       handler: ast.ExceptHandler) -> Iterator[Finding]:
        if handler.type is None:
            yield self.finding(
                module, handler,
                "bare 'except:' on a failure path; name the exceptions "
                "(it also catches SystemExit and breaks crash hooks)")
        elif _is_broad(handler) and _body_is_silent(handler.body):
            yield self.finding(
                module, handler,
                "broad exception handler silently discards the fault; "
                "log it, count it, or re-raise")

    def _check_loop(self, module: Module, loop: ast.AST
                    ) -> Iterator[Finding]:
        # A try whose handler continues *this* loop is a hand-rolled
        # retry.  The same-scope walk stops at inner loops and defs, so
        # every loop reports only its own handlers, exactly once.
        body = list(getattr(loop, "body", []))
        body += list(getattr(loop, "orelse", []))
        for node in _walk_same_scope(body):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                for sub in _walk_same_scope(list(handler.body)):
                    if isinstance(sub, ast.Continue):
                        yield self.finding(
                            module, sub,
                            "hand-rolled retry loop (except -> "
                            "continue); use repro.util.retry."
                            "retry_bounded so the attempt budget and "
                            "backoff are explicit")
