"""Concurrency rules (CC2xx).

``CC201`` — lock discipline in ``repro/service/``.  The
``AllocationController`` serializes every state change behind one RLock;
the *only* sanctioned places to spend time under it are the re-solve
paths (``admit``/``depart``, the ``drain_node``/``add_node`` admin
endpoints, and ``replay_events`` restart recovery).  The rule builds a
call graph over
the service package, finds every ``with self._lock:`` region, and flags
lock-held code that can reach a solver entry point, blocking I/O, or a
checkpoint write from any *other* function — the classic "quick getter
grows a solve under the lock" regression.

``CC202`` — objects crossing ``parallel_imap`` worker boundaries.  The
experiment engine ships picklable task descriptors to a process pool;
a lambda or nested closure as the worker either fails to pickle (spawn)
or silently captures parent state that workers mutate without effect
(fork).  Workers must be module-level callables.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from ..core import (
    Finding,
    Module,
    Project,
    Rule,
    dotted_name,
    register_rule,
)

__all__ = ["LockDisciplineRule", "ParallelBoundaryRule"]

#: Functions allowed to hold the controller lock across a solve: the
#: state-changing request paths (and everything they call) — service
#: admissions/departures, the node-churn admin endpoints, and journal
#: replay on restart, which re-runs those solves before serving.
_SANCTIONED_LOCK_HOLDERS = frozenset({"admit", "depart", "drain_node",
                                      "add_node", "replay_events"})

#: Call patterns that must not run while the controller lock is held
#: (outside the sanctioned paths).  Matched against the call's dotted
#: name: its last attribute, or dotted prefixes for stdlib I/O.
_SOLVER_TAILS = frozenset({"solve", "solve_with_hint",
                           "binary_search_max_yield"})
_BLOCKING_EXACT = frozenset({"open", "time.sleep", "sleep"})
_BLOCKING_PREFIXES = ("subprocess.", "socket.", "urllib.", "requests.",
                      "http.client.")


def _call_class(name: str) -> str | None:
    """Classify a dotted call name, or ``None`` when benign."""
    tail = name.split(".")[-1]
    if tail in _SOLVER_TAILS:
        return "a solver call"
    if name in _BLOCKING_EXACT or tail == "sleep":
        return "blocking I/O"
    if name.startswith(_BLOCKING_PREFIXES):
        return "blocking I/O"
    if "checkpoint" in name.lower():
        return "a checkpoint write"
    return None


@dataclass
class _FuncInfo:
    """One function in the service package's call graph."""

    module: Module
    node: ast.FunctionDef
    qualname: str          # "AllocationController.admit" or "run_server"
    cls: str | None
    #: calls made anywhere in the body: (dotted name, line)
    calls: list[tuple[str, int]] = field(default_factory=list)
    #: lock-held regions: (with-stmt, calls inside the region)
    lock_regions: list[tuple[ast.With, list[tuple[str, int]]]] = \
        field(default_factory=list)


def _is_lock_context(item: ast.withitem) -> bool:
    name = dotted_name(item.context_expr)
    if name is None and isinstance(item.context_expr, ast.Call):
        name = dotted_name(item.context_expr.func)
    return bool(name) and name.split(".")[-1].lstrip("_") in ("lock", "rlock")


def _calls_in(node: ast.AST) -> list[tuple[str, int]]:
    out = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name is not None:
                out.append((name, sub.lineno))
    return out


def _collect_functions(module: Module) -> list[_FuncInfo]:
    infos: list[_FuncInfo] = []

    def visit(node: ast.AST, cls: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{cls}.{child.name}" if cls else child.name
                info = _FuncInfo(module=module, node=child, qualname=qual,
                                 cls=cls, calls=_calls_in(child))
                for sub in ast.walk(child):
                    if isinstance(sub, ast.With) and \
                            any(_is_lock_context(i) for i in sub.items):
                        info.lock_regions.append((sub, _calls_in(sub)))
                infos.append(info)
                visit(child, cls)  # nested defs keep the class context

    visit(module.tree, None)
    return infos


@register_rule
class LockDisciplineRule(Rule):
    id = "CC201"
    name = "service-lock-discipline"
    summary = ("no solver calls, blocking I/O, or checkpoint writes while "
               "the AllocationController lock is held outside the "
               "sanctioned re-solve paths — admit/depart, node "
               "drain/add, journal replay (repro/service/)")

    #: transitive-call search depth through the service package.
    MAX_DEPTH = 6

    def check(self, project: Project) -> Iterator[Finding]:
        functions: list[_FuncInfo] = []
        for module in project.modules:
            if module.in_package("service"):
                functions.extend(_collect_functions(module))
        if not functions:
            return
        by_method: dict[str, list[_FuncInfo]] = {}
        for info in functions:
            by_method.setdefault(info.node.name, []).append(info)

        for info in functions:
            if info.node.name in _SANCTIONED_LOCK_HOLDERS:
                continue
            for with_stmt, calls in info.lock_regions:
                offense = self._search(calls, by_method, info,
                                       depth=self.MAX_DEPTH, chain=())
                if offense is not None:
                    kind, name, via = offense
                    path = " -> ".join(via + (name,))
                    yield self.finding(
                        info.module, with_stmt,
                        f"{info.qualname} holds the controller lock over "
                        f"{kind} ({path}); only the sanctioned re-solve "
                        "paths may — move the work outside the lock")

    def _search(self, calls: list[tuple[str, int]],
                by_method: dict[str, list[_FuncInfo]],
                origin: _FuncInfo, depth: int,
                chain: tuple[str, ...],
                visited: set[str] | None = None
                ) -> tuple[str, str, tuple[str, ...]] | None:
        """First (kind, call, via-chain) reachable from *calls*."""
        if visited is None:
            visited = set()
        for name, _line in calls:
            kind = _call_class(name)
            if kind is not None:
                return kind, name, chain
        if depth == 0:
            return None
        for name, _line in calls:
            callee = self._resolve(name, by_method, origin)
            if callee is None or callee.qualname in visited:
                continue
            visited.add(callee.qualname)
            found = self._search(callee.calls, by_method, callee,
                                 depth - 1, chain + (callee.qualname,),
                                 visited)
            if found is not None:
                return found
        return None

    @staticmethod
    def _resolve(name: str, by_method: dict[str, list[_FuncInfo]],
                 origin: _FuncInfo) -> _FuncInfo | None:
        """Resolve a dotted call to a service-package function.

        ``self.foo`` prefers a method of the caller's class; a bare name
        prefers a function in the caller's module; otherwise the unique
        service-package function of that name, if any.
        """
        parts = name.split(".")
        candidates = by_method.get(parts[-1], [])
        if not candidates:
            return None
        if parts[0] == "self" and len(parts) == 2:
            for cand in candidates:
                if cand.cls == origin.cls:
                    return cand
        if len(parts) == 1:
            for cand in candidates:
                if cand.module is origin.module and cand.cls is None:
                    return cand
        if len(candidates) == 1:
            return candidates[0]
        return None


#: The pool entry points whose first positional argument runs in worker
#: processes.
_POOL_ENTRY_POINTS = frozenset({"parallel_imap", "parallel_imap_cached",
                                "parallel_map"})


@register_rule
class ParallelBoundaryRule(Rule):
    id = "CC202"
    name = "picklable-pool-workers"
    summary = ("parallel_imap/parallel_map workers must be module-level "
               "callables — lambdas and nested closures capture shared "
               "mutable state that does not survive the process boundary")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            nested = self._nested_function_names(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None \
                        or name.split(".")[-1] not in _POOL_ENTRY_POINTS:
                    continue
                if not node.args:
                    continue
                worker = node.args[0]
                if isinstance(worker, ast.Lambda):
                    yield self.finding(
                        module, worker,
                        "lambda worker crosses the process-pool boundary; "
                        "hoist it to a module-level function")
                elif isinstance(worker, ast.Name) and worker.id in nested:
                    yield self.finding(
                        module, worker,
                        f"worker {worker.id!r} is a nested closure; its "
                        "captured state is copied, not shared, across "
                        "pool workers — hoist it to module level")

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> frozenset[str]:
        nested: set[str] = set()
        for func in ast.walk(tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(func):
                    if sub is not func and isinstance(
                            sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        nested.add(sub.name)
        return frozenset(nested)
