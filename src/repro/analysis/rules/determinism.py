"""Determinism rules (DT1xx).

The reproduction's headline guarantees — bit-identical kernel backends,
byte-identical shard merges and daemon/library replays, stable checkpoint
fingerprints — all reduce to a handful of source-level disciplines:

* every random draw flows through :mod:`repro.util.rng` seeds
  (``DT101``);
* solver/kernel/experiment code never reads the wall clock — monotonic
  timing only, wall timestamps belong to the obs layer (``DT102``);
* fingerprint/key constructors never iterate unordered containers
  (``DT103``);
* feasibility slack comes from the named tolerance constants, never
  from inline float literals — the exact bug class the PR 3 tolerance
  unification fixed by hand (``DT104``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..core import (
    Finding,
    Module,
    Project,
    Rule,
    dotted_name,
    parent_map,
    register_rule,
    walk_calls,
)

__all__ = ["GlobalRngRule", "WallClockRule", "UnorderedFingerprintRule",
           "ToleranceLiteralRule"]

#: numpy legacy global-state samplers (``np.random.<fn>`` uses the shared
#: module RNG — unseeded and order-dependent across the process).
_NP_GLOBAL_SAMPLERS = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "exponential", "poisson", "beta", "gamma",
    "lognormal", "pareto",
})

#: The one module allowed to touch RNG construction primitives.
_RNG_HOME = "repro/util/rng.py"


@register_rule
class GlobalRngRule(Rule):
    id = "DT101"
    name = "no-global-rng"
    summary = ("random draws must flow through repro.util.rng seeds: no "
               "`random` module, no np.random global samplers, no unseeded "
               "default_rng() outside util/rng.py")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.is_file(_RNG_HOME):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield self.finding(
                            module, node,
                            "stdlib `random` is process-global state; "
                            "seed a numpy Generator via repro.util.rng")
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random":
                    yield self.finding(
                        module, node,
                        "stdlib `random` is process-global state; "
                        "seed a numpy Generator via repro.util.rng")
        for call, name in walk_calls(module.tree):
            parts = name.split(".")
            if len(parts) >= 3 and parts[-2] == "random" \
                    and parts[-3] in ("np", "numpy") \
                    and parts[-1] in _NP_GLOBAL_SAMPLERS:
                yield self.finding(
                    module, call,
                    f"np.random.{parts[-1]}() samples the process-global "
                    "RNG; derive a Generator from repro.util.rng instead")
            elif parts[-1] == "default_rng" and self._unseeded(call):
                yield self.finding(
                    module, call,
                    "default_rng() without a seed is nondeterministic; "
                    "thread a seed or use repro.util.rng.as_generator")

    @staticmethod
    def _unseeded(call: ast.Call) -> bool:
        if not call.args and not call.keywords:
            return True
        first = call.args[0] if call.args else None
        return (isinstance(first, ast.Constant) and first.value is None)


#: Wall-clock reads.  ``time.time`` and friends jitter between runs and
#: machines; solver/kernel/experiment code times with ``time.monotonic``/
#: ``time.perf_counter`` and leaves wall timestamps to the obs layer.
_WALL_CLOCK = ("time.time", "time.time_ns")
_DATETIME_TAILS = frozenset({"now", "utcnow", "today", "fromtimestamp"})


@register_rule
class WallClockRule(Rule):
    id = "DT102"
    name = "no-wall-clock"
    summary = ("no time.time()/datetime.now() outside repro/obs/ — "
               "monotonic or obs clock only in solver/kernel/experiment "
               "paths")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.in_package("obs"):
                continue
            for call, name in walk_calls(module.tree):
                parts = name.split(".")
                if name in _WALL_CLOCK:
                    yield self.finding(
                        module, call,
                        f"{name}() is wall-clock; use time.monotonic()/"
                        "time.perf_counter(), or emit via repro.obs")
                elif parts[-1] in _DATETIME_TAILS and (
                        "datetime" in parts[:-1] or "date" in parts[:-1]):
                    yield self.finding(
                        module, call,
                        f"{name}() is wall-clock; use time.monotonic()/"
                        "time.perf_counter(), or emit via repro.obs")


#: Functions whose *output* becomes a checkpoint identity.  Iteration
#: order inside them must be an explicit, local property.
_KEY_BUILDER = re.compile(
    r"(^|_)(fingerprint|workload_id|scenario_key|task_keys?)$")

#: Order-insensitive consumers: reducing through these launders an
#: unordered iteration into a deterministic value.
_ORDER_FREE = frozenset({"sorted", "all", "any", "sum", "min", "max",
                         "len", "frozenset", "set"})

_UNORDERED_METHODS = frozenset({"items", "keys", "values"})


@register_rule
class UnorderedFingerprintRule(Rule):
    id = "DT103"
    name = "ordered-fingerprints"
    summary = ("fingerprint/workload_id/scenario_key/task_key builders "
               "must not iterate dicts or sets without sorted() — "
               "checkpoint identities depend on the result")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            for func in ast.walk(module.tree):
                if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and _KEY_BUILDER.search(func.name):
                    yield from self._check_builder(module, func)

    def _check_builder(self, module: Module,
                       func: ast.FunctionDef) -> Iterator[Finding]:
        parents = parent_map(func)
        for node in ast.walk(func):
            bad = self._unordered_source(node)
            if bad is None:
                continue
            if self._reduced_order_free(node, parents):
                continue
            yield self.finding(
                module, node,
                f"{func.name}() iterates {bad} — wrap in sorted(); "
                "the result feeds a checkpoint identity")

    @staticmethod
    def _unordered_source(node: ast.AST) -> str | None:
        """A description when *node* produces unordered iteration."""
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name and name.split(".")[-1] in _UNORDERED_METHODS \
                    and "." in name:
                return f"{name}()"
            if name == "set":
                return "set(...)"
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        return None

    @staticmethod
    def _reduced_order_free(node: ast.AST,
                            parents: dict[ast.AST, ast.AST]) -> bool:
        """True when an order-insensitive reducer consumes *node*."""
        seen = 0
        current = parents.get(node)
        while current is not None and seen < 8:
            if isinstance(current, ast.Call):
                name = dotted_name(current.func)
                if name and name.split(".")[-1] in _ORDER_FREE:
                    return True
            if isinstance(current, (ast.stmt,)):
                break
            current = parents.get(current)
            seen += 1
        return False


#: Files allowed to define the numerical slack used by feasibility
#: checks; everything else imports the named constants.
_TOLERANCE_HOMES = frozenset({
    "repro/core/resources.py",                 # FEASIBILITY_RTOL/ATOL/...
    "repro/algorithms/vector_packing/state.py",  # capacity_tolerance()
})

#: Anything this small in magnitude is a tolerance, not data.
_TOLERANCE_CEILING = 1e-5

_CONST_NAME = re.compile(r"^_?[A-Z][A-Z0-9_]*$")


@register_rule
class ToleranceLiteralRule(Rule):
    id = "DT104"
    name = "named-tolerances"
    summary = ("no inline float-tolerance literals outside "
               "capacity_tolerance()/the FEASIBILITY_* constants — name "
               "the constant or import the shared one")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.relpath in _TOLERANCE_HOMES:
                continue
            sanctioned = self._named_constant_literals(module.tree)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Constant) \
                        and isinstance(node.value, float) \
                        and 0.0 < abs(node.value) <= _TOLERANCE_CEILING \
                        and id(node) not in sanctioned:
                    yield self.finding(
                        module, node,
                        f"inline tolerance literal {node.value!r}; bind it "
                        "to a named UPPER_CASE constant or import "
                        "FEASIBILITY_RTOL/capacity_tolerance()")

    @staticmethod
    def _named_constant_literals(tree: ast.Module) -> set[int]:
        """ids of Constant nodes sanctioned by a named-constant binding.

        A literal may appear in the value of a module- or class-level
        assignment whose targets are all UPPER_CASE names: that *is* the
        "name your tolerance" discipline the rule enforces.
        """
        sanctioned: set[int] = set()
        scopes: list[ast.AST] = [tree]
        scopes += [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
        for scope in scopes:
            for stmt in getattr(scope, "body", ()):
                targets: list[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets = [stmt.target]
                else:
                    continue
                if all(isinstance(t, ast.Name) and _CONST_NAME.match(t.id)
                       for t in targets):
                    value = stmt.value
                    assert value is not None
                    sanctioned.update(id(n) for n in ast.walk(value)
                                      if isinstance(n, ast.Constant))
        return sanctioned
