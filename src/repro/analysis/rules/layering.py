"""Layering / observability rules (LY3xx).

``LY301`` — library code does not ``print()``.  Human output belongs to
the CLI layer (``repro/cli.py``, ``main()``-style entry points) or to
``logging``/``repro.obs``; a stray print in a solver corrupts piped
experiment output and bypasses the structured log.

``LY302`` — metrics go through :mod:`repro.obs.metrics`.  PR 7 migrated
every hand-rolled counter dict onto the shared registry; this rule keeps
them from growing back.

``LY303`` — kernels stay leaf modules.  ``repro/kernels/`` may import
the stdlib, numpy, numba, and its own package — nothing else.  A kernel
that reaches into the object model drags python back into the hot loop
and breaks the "backends are interchangeable array programs" contract.

``LY304`` — the batch container stays standalone.
``repro/kernels/batch.py`` is the structure-of-arrays container every
backend (and the solver layer above) shares; it may import the stdlib
and numpy, *nothing else* — not numba, not sibling kernel modules, no
relative imports.  Stricter than LY303 because any dependency here
becomes a dependency of every backend and an import-cycle hazard for
the solvers that build batches.
"""

from __future__ import annotations

import ast
import sys
from typing import Iterator

from ..core import (
    Finding,
    Module,
    Project,
    Rule,
    dotted_name,
    register_rule,
)

__all__ = ["NoPrintRule", "MetricsDisciplineRule", "KernelImportRule",
           "BatchContainerRule"]

#: Modules whose whole job is terminal output.
_CLI_FILES = frozenset({"repro/cli.py", "repro/analysis/cli.py"})

#: Function names that are CLI entry points wherever they live
#: (``main(argv)`` in ``python -m``-style tools, ``_cmd_*`` handlers).
_ENTRY_POINT_PREFIXES = ("main", "_cmd_", "_main")


def _enclosing_functions(tree: ast.Module) -> dict[int, str]:
    """Map every node id to the name of its nearest enclosing function."""
    owner: dict[int, str] = {}

    def visit(node: ast.AST, current: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            name = current
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = child.name
            if name is not None:
                owner[id(child)] = name
            visit(child, name)

    visit(tree, None)
    return owner


def _stderr_keyword(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "file" and dotted_name(kw.value) == "sys.stderr":
            return True
    return False


def _under_main_guard(tree: ast.Module, node: ast.AST) -> bool:
    """True when *node* sits under ``if __name__ == "__main__":``."""
    for stmt in tree.body:
        if isinstance(stmt, ast.If):
            test = stmt.test
            if isinstance(test, ast.Compare) \
                    and isinstance(test.left, ast.Name) \
                    and test.left.id == "__name__":
                if any(sub is node for sub in ast.walk(stmt)):
                    return True
    return False


@register_rule
class NoPrintRule(Rule):
    id = "LY301"
    name = "no-print-in-library"
    summary = ("no print() in library code — CLI entry points and "
               "stderr diagnostics only; use logging/repro.obs elsewhere")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.relpath in _CLI_FILES:
                continue
            owner = _enclosing_functions(module.tree)
            for node in ast.walk(module.tree):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "print"):
                    continue
                if _stderr_keyword(node):
                    continue
                func = owner.get(id(node))
                if func is not None and func.startswith(
                        _ENTRY_POINT_PREFIXES):
                    continue
                if _under_main_guard(module.tree, node):
                    continue
                yield self.finding(
                    module, node,
                    "print() in library code; route through logging/"
                    "repro.obs, or print(file=sys.stderr) for diagnostics")


#: Assignment targets that smell like a metrics store.
_METRIC_NAME_PARTS = ("metric", "counter")

#: Value constructors that make a hand-rolled store out of one.
_DICT_FACTORIES = frozenset({"dict", "defaultdict", "Counter",
                             "OrderedDict"})


@register_rule
class MetricsDisciplineRule(Rule):
    id = "LY302"
    name = "metrics-via-registry"
    summary = ("no hand-rolled metric/counter dicts outside repro/obs/ — "
               "use repro.obs.MetricsRegistry (the PR 7 migration, "
               "enforced forever)")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.in_package("obs"):
                continue
            for node in ast.walk(module.tree):
                targets: list[ast.expr]
                if isinstance(node, ast.Assign):
                    targets = node.targets
                    value = node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets = [node.target]
                    value = node.value
                else:
                    continue
                if not self._dictish(value):
                    continue
                for target in targets:
                    name = self._target_name(target)
                    if name and any(part in name.lower()
                                    for part in _METRIC_NAME_PARTS):
                        yield self.finding(
                            module, node,
                            f"hand-rolled metrics store {name!r}; use "
                            "repro.obs.MetricsRegistry counters/gauges/"
                            "histograms instead")

    @staticmethod
    def _target_name(target: ast.expr) -> str | None:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return None

    @staticmethod
    def _dictish(value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return True
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            return bool(name) and name.split(".")[-1] in _DICT_FACTORIES
        return False


#: Absolute imports a kernel module may use besides the stdlib.
_KERNEL_THIRD_PARTY = frozenset({"numpy", "numba"})


@register_rule
class KernelImportRule(Rule):
    id = "LY303"
    name = "kernel-leaf-imports"
    summary = ("repro/kernels/ imports only the stdlib, numpy, numba, and "
               "its own package — kernels are leaf array programs")

    def check(self, project: Project) -> Iterator[Finding]:
        stdlib = sys.stdlib_module_names
        for module in project.modules:
            if not module.in_package("kernels"):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        top = alias.name.split(".")[0]
                        if top not in stdlib \
                                and top not in _KERNEL_THIRD_PARTY:
                            yield self.finding(
                                module, node,
                                f"kernel imports {alias.name!r}; kernels "
                                "may import only stdlib/numpy/numba and "
                                "repro.kernels itself")
                elif isinstance(node, ast.ImportFrom):
                    if node.level >= 2:
                        yield self.finding(
                            module, node,
                            "kernel imports from outside repro/kernels/ "
                            f"(from {'.' * node.level}"
                            f"{node.module or ''} ...); kernels are leaf "
                            "modules")
                    elif node.level == 0 and node.module:
                        top = node.module.split(".")[0]
                        if top == "repro" and not node.module.startswith(
                                "repro.kernels"):
                            yield self.finding(
                                module, node,
                                f"kernel imports {node.module!r}; kernels "
                                "may not depend on the object model")
                        elif top not in stdlib \
                                and top != "repro" \
                                and top not in _KERNEL_THIRD_PARTY:
                            yield self.finding(
                                module, node,
                                f"kernel imports {node.module!r}; kernels "
                                "may import only stdlib/numpy/numba and "
                                "repro.kernels itself")
    # (relative level-1 imports stay inside the package by construction)


#: The one file LY304 governs.
_BATCH_CONTAINER = "repro/kernels/batch.py"


@register_rule
class BatchContainerRule(Rule):
    id = "LY304"
    name = "batch-container-standalone"
    summary = ("repro/kernels/batch.py imports only the stdlib and numpy "
               "— the shared batch container must stay importable by "
               "every backend with no further dependencies")

    def check(self, project: Project) -> Iterator[Finding]:
        stdlib = sys.stdlib_module_names
        for module in project.modules:
            if module.relpath != _BATCH_CONTAINER:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        top = alias.name.split(".")[0]
                        if top not in stdlib and top != "numpy":
                            yield self.finding(
                                module, node,
                                f"batch container imports {alias.name!r}; "
                                "only stdlib and numpy are allowed here")
                elif isinstance(node, ast.ImportFrom):
                    if node.level >= 1:
                        yield self.finding(
                            module, node,
                            "batch container uses a relative import "
                            f"(from {'.' * node.level}"
                            f"{node.module or ''} ...); it must not "
                            "depend on sibling kernel modules")
                    elif node.module:
                        top = node.module.split(".")[0]
                        if top not in stdlib and top != "numpy":
                            yield self.finding(
                                module, node,
                                f"batch container imports {node.module!r};"
                                " only stdlib and numpy are allowed here")
