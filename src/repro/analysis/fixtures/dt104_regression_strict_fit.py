# repro-fixture: rule=DT104 count=2 path=repro/algorithms/example.py
# ruff: noqa
"""Regression: the pre-fix greedy/rounding element-fit checks.

Before this PR, ``algorithms/greedy.py``, ``rounding.py``, and
``sharing/baseline.py`` each carried a private copy of the seed's
``1e-12`` fit slack; ``core/service.py`` and ``core/priorities.py`` used
it for the yield-domain bound.  They now share
``core.resources.STRICT_FIT_ATOL`` — this snippet preserves the old
shape so the literals cannot quietly reappear.
"""


def elem_fit_rows(req_elem, node_elem):
    return (req_elem <= node_elem + 1e-12).all(axis=1)


def yield_upper_bound(need, cap):
    return min(1.0 + 1e-12, cap / need)
