# repro-fixture: rule=LY302 count=2 path=repro/service/example.py
# ruff: noqa
"""Known-bad: hand-rolled metric stores (the pre-PR 7 shape)."""
from collections import defaultdict


class Handler:
    def __init__(self):
        self.metrics = {"requests": 0, "errors": 0}

    def reset(self):
        request_counters = defaultdict(int)
        return request_counters
