# repro-fixture: rule=DT102 count=0 path=repro/experiments/example.py
# ruff: noqa
"""Known-good: monotonic timing in an experiment driver."""
import time


def run_sweep(tasks):
    t0 = time.perf_counter()
    deadline = time.monotonic() + 5.0
    return t0, deadline, tasks
