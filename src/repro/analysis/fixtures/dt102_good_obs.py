# repro-fixture: rule=DT102 count=0 path=repro/obs/example.py
# ruff: noqa
"""Known-good: the obs layer owns wall timestamps."""
import time


def stamp_record(record):
    record["ts"] = round(time.time(), 6)
    return record
