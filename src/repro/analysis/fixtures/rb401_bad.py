# repro-fixture: rule=RB401 count=3 path=repro/service/example.py
# ruff: noqa
"""Known-bad: swallowed faults and a hand-rolled retry on a failure path."""
import json


def load_state(path):
    try:
        return json.loads(path.read_text())
    except:  # bare except: also eats SystemExit / crash hooks
        return None


def flush_quietly(fh):
    try:
        fh.flush()
    except Exception:
        pass  # the fault vanishes: no log, no metric, no rollback


def solve_with_retry(solver, instance):
    for _attempt in range(5):
        try:
            return solver.solve(instance)
        except ValueError:
            continue  # hand-rolled retry; retry_bounded owns this
    return None
