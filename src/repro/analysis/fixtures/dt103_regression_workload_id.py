# repro-fixture: rule=DT103 count=1 path=repro/workloads/example.py
# ruff: noqa
"""Regression: the pre-fix ``workloads/registry.workload_id`` body.

``_non_default_params`` happened to return a sorted dict, so the join
below was *accidentally* ordered — one upstream refactor away from
non-deterministic workload ids baked into checkpoint paths.  The fix
sorts at the point of use; this snippet keeps the original shape so the
rule guards against its return.
"""


def _format_scalar(value):
    return repr(value)


def workload_id(name, params):
    if not params:
        return name
    body = ",".join(f"{k}={_format_scalar(v)}" for k, v in params.items())
    return f"{name}:{body}"
