# repro-fixture: rule=LY303 count=0 path=repro/kernels/example.py
# ruff: noqa
"""Known-good: stdlib + numpy + intra-package imports only."""
import ctypes
import os

import numpy as np

from . import _loops
from .api import KernelBackend


def fill_bins(loads, caps):
    del ctypes, os, _loops, KernelBackend
    return np.all(loads <= caps, axis=1)
