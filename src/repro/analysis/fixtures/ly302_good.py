# repro-fixture: rule=LY302 count=0 path=repro/service/example.py
# ruff: noqa
"""Known-good: counters live in the shared obs registry."""
from repro import obs


class Handler:
    def __init__(self):
        self.registry = obs.MetricsRegistry()
        self.requests = self.registry.counter(
            "repro_requests_total", "HTTP requests handled.", ("endpoint",))
        self.results = {}  # plain state, not a metrics store

    def handle(self, endpoint):
        self.requests.labels(endpoint=endpoint).inc()
