# repro-fixture: rule=DT101 count=0 path=repro/workloads/example.py
# ruff: noqa
"""Known-good: every draw flows through an explicit seed."""
import numpy as np


def sample_services(n, seed):
    rng = np.random.default_rng(seed)
    child = np.random.default_rng(np.random.SeedSequence(seed))
    return rng.permutation(n), child.uniform(size=n)
