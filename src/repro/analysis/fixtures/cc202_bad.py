# repro-fixture: rule=CC202 count=2 path=repro/experiments/example.py
# ruff: noqa
"""Known-bad: closure workers crossing the process-pool boundary."""
from repro.util.parallel import parallel_imap


def run_sweep(tasks, scale):
    results = []

    def worker(task):
        results.append(task)  # mutated copy: never visible to the parent
        return task * scale

    doubled = list(parallel_imap(lambda t: t * 2, tasks))
    scaled = list(parallel_imap(worker, tasks))
    return doubled, scaled, results
