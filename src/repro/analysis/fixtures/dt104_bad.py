# repro-fixture: rule=DT104 count=2 path=repro/algorithms/example.py
# ruff: noqa
"""Known-bad: inline tolerance literals in a fit check (the PR 3 bug
class: ad-hoc slack drifting away from capacity_tolerance())."""


def elem_fits(req, cap):
    if (req <= cap + 1e-12).all():
        return True
    slack = cap * 1e-9
    return bool((req - cap <= slack).all())
