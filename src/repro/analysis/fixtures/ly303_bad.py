# repro-fixture: rule=LY303 count=3 path=repro/kernels/example.py
# ruff: noqa
"""Known-bad: a kernel reaching out of the leaf package."""
import scipy.optimize
from repro.core.node import NodeArray

from ..core.resources import FEASIBILITY_RTOL


def fill_bins(loads, caps):
    del NodeArray, FEASIBILITY_RTOL, scipy
    return loads <= caps
