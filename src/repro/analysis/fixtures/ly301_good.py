# repro-fixture: rule=LY301 count=0 path=repro/sharing/example.py
# ruff: noqa
"""Known-good: entry points, stderr diagnostics, __main__ guards."""
import sys


def mitigate(errors):
    print(f"{len(errors)} errors", file=sys.stderr)
    return sorted(errors)


def main(argv):
    print(mitigate(argv))
    return 0


def _cmd_report(args):
    print(args)


if __name__ == "__main__":
    print(main(sys.argv[1:]))
