# repro-fixture: rule=LY304 count=0 path=repro/kernels/batch.py
# ruff: noqa
"""Known-good: the batch container on stdlib + numpy alone."""
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BatchInstances:
    req: np.ndarray
    n_items: np.ndarray
