# repro-fixture: rule=CC202 count=0 path=repro/experiments/example.py
# ruff: noqa
"""Known-good: module-level picklable workers."""
from repro.util.parallel import parallel_imap, parallel_imap_cached


def _solve_task(task):
    return task * 2


def run_sweep(tasks, cache):
    plain = list(parallel_imap(_solve_task, tasks))
    cached = list(parallel_imap_cached(_solve_task, tasks, cache,
                                       key=lambda t: t))
    return plain, cached
