# repro-fixture: rule=DT102 count=3 path=repro/experiments/example.py
# ruff: noqa
"""Known-bad: wall-clock reads in an experiment driver."""
import time
from datetime import datetime


def run_sweep(tasks):
    started = time.time()
    stamp = datetime.now().isoformat()
    due = datetime.utcnow()
    return started, stamp, due, tasks
