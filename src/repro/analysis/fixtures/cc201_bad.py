# repro-fixture: rule=CC201 count=2 path=repro/service/example.py
# ruff: noqa
"""Known-bad: lock-held blocking work outside admit/depart."""
import threading
import time


class Controller:
    def __init__(self):
        self._lock = threading.RLock()
        self.rows = []

    def _write_report(self, path):
        with open(path, "w") as fh:
            fh.write("\n".join(self.rows))

    def stats(self, path):
        with self._lock:  # transitively reaches open() under the lock
            self.rows.append("stats")
            self._write_report(path)

    def poll(self):
        with self._lock:  # sleeps while every request queues behind us
            time.sleep(0.1)
            return len(self.rows)
