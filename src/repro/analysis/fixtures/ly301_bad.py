# repro-fixture: rule=LY301 count=2 path=repro/sharing/example.py
# ruff: noqa
"""Known-bad: prints from library code."""

print("module import side effect")


def mitigate(errors):
    print(f"mitigating {len(errors)} errors")
    return sorted(errors)
