# repro-fixture: rule=RB401 count=0 path=repro/service/example_good.py
# ruff: noqa
"""Known-good: named exceptions, handled faults, bounded retries."""
import json
import logging

logger = logging.getLogger("repro.example")


def load_state(path):
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        logger.warning("state load failed: %s", exc)
        return None


def flush_or_log(fh):
    try:
        fh.flush()
    except Exception:
        logger.exception("flush failed")  # handled, not swallowed


def solve_with_retry(solver, instance, retry_bounded, policy):
    return retry_bounded(lambda: solver.solve(instance), policy=policy)


def skip_bad_rows(rows):
    # a plain filter loop: continue outside any try handler is fine
    out = []
    for row in rows:
        if not row:
            continue
        out.append(row)
    return out
