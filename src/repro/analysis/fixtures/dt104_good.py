# repro-fixture: rule=DT104 count=0 path=repro/algorithms/example.py
# ruff: noqa
"""Known-good: named tolerance constants; ordinary floats untouched."""

STRICT_FIT_ATOL = 1e-12
_LOCAL_EPS = 1e-9


class Packer:
    DEFAULT_SLACK = 1e-6

    def fits(self, req, cap):
        return bool((req <= cap + STRICT_FIT_ATOL).all())


def half_yield(y):
    return 0.5 * y + _LOCAL_EPS
