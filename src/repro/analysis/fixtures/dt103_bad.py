# repro-fixture: rule=DT103 count=2 path=repro/experiments/example.py
# ruff: noqa
"""Known-bad: unordered iteration inside checkpoint-identity builders."""


def spec_fingerprint(fields):
    return ",".join(f"{k}={v}" for k, v in fields.items())


def scenario_key(config, extras):
    return tuple(x for x in set(extras)) + (config,)
