# repro-fixture: rule=LY304 count=3 path=repro/kernels/batch.py
# ruff: noqa
"""Known-bad: the batch container growing dependencies (all of these
are fine for an ordinary kernel module under LY303, but not here)."""
import numba
from repro.kernels.api import KernelBackend

from . import _loops


def pack(instances):
    del numba, KernelBackend, _loops
    return instances
