# repro-fixture: rule=DT101 count=4 path=repro/workloads/example.py
# ruff: noqa
"""Known-bad: process-global RNG in a workload module."""
import random
from random import choice

import numpy as np


def sample_services(n):
    order = list(range(n))
    np.random.shuffle(order)
    rng = np.random.default_rng()
    return [choice(order) for _ in range(n)], rng, random.random
