# repro-fixture: rule=CC201 count=0 path=repro/service/example.py
# ruff: noqa
"""Known-good: solves stay on the sanctioned admit/depart paths; other
lock regions touch in-memory state only."""
import threading


class Controller:
    def __init__(self, solver):
        self._lock = threading.RLock()
        self.solver = solver
        self.live = {}

    def admit(self, spec):
        with self._lock:  # sanctioned: the re-solve request path
            self.live[spec.sid] = spec
            return self.solver.solve_with_hint(self._instance(), hint=None)

    def depart(self, sid):
        with self._lock:  # sanctioned: the re-solve request path
            self.live.pop(sid, None)
            return self.solver.solve(self._instance())

    def snapshot(self):
        with self._lock:
            return dict(self.live)

    def _instance(self):
        return tuple(self.live)
