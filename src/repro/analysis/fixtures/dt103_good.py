# repro-fixture: rule=DT103 count=0 path=repro/experiments/example.py
# ruff: noqa
"""Known-good: identity builders sort or reduce order-free."""


def spec_fingerprint(fields):
    return ",".join(f"{k}={v}" for k, v in sorted(fields.items()))


def scenario_key(config, extras):
    scalars = all(isinstance(v, float) for v in extras.values())
    return tuple(sorted(set(extras))) + (config, scalars)
