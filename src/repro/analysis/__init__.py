"""Project-aware static analysis (``repro check``).

An AST-based rule engine that encodes this repo's *actual* invariants —
the properties the runtime test suite proves after the fact, checked at
lint time instead:

* determinism (``DT1xx``): seeded RNG only, no wall clock in solver/
  kernel/experiment paths, ordered fingerprint construction, named
  tolerance constants;
* concurrency (``CC2xx``): the service lock never covers solves or
  blocking I/O outside admit/depart, pool workers are picklable
  module-level callables;
* layering (``LY3xx``): no print in library code, metrics through
  :mod:`repro.obs.metrics`, kernels stay leaf modules.

Suppress one finding with ``# repro: noqa[RULE]`` on its line; run the
fixture corpus with ``repro check --selftest``; keep typed modules
locked in with ``python -m repro.analysis.ratchet``.
"""

from .core import (
    CheckResult,
    EngineError,
    Finding,
    Module,
    Project,
    Rule,
    all_rules,
    register_rule,
    rule_ids,
    run_check,
)
from .reporters import SCHEMA_VERSION, render_json, render_text
from .selftest import run_selftest

__all__ = [
    "CheckResult",
    "EngineError",
    "Finding",
    "Module",
    "Project",
    "Rule",
    "SCHEMA_VERSION",
    "all_rules",
    "register_rule",
    "render_json",
    "render_text",
    "rule_ids",
    "run_check",
    "run_selftest",
]
