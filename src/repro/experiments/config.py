"""Experiment grid presets.

``PAPER_GRID`` mirrors §4: 64 hosts; 100/250/500 services; CoV 0-1 in
0.025 steps; slack 0.1-0.9 in 0.1 steps; 100 instances per scenario
(12,300 base instances, 36,900 scaled per service count).  That grid costs
CPU-days in pure Python, so ``QUICK_GRID`` (the default for benches and
the CLI) keeps the same structure at a laptop-friendly size; pass
``--paper`` to the CLI for the full sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


from ..workloads import DEFAULT_WORKLOAD, ScenarioConfig, parse_workload

__all__ = ["GridSpec", "PAPER_GRID", "QUICK_GRID", "SMOKE_GRID"]


def _float_range(start: float, stop: float, step: float) -> tuple[float, ...]:
    n = int(round((stop - start) / step)) + 1
    return tuple(round(start + i * step, 6) for i in range(n))


@dataclass(frozen=True)
class GridSpec:
    """A full evaluation grid (the cross product of all fields)."""

    hosts: int = 64
    services: tuple[int, ...] = (100, 250, 500)
    cov_values: tuple[float, ...] = _float_range(0.0, 1.0, 0.025)
    slack_values: tuple[float, ...] = _float_range(0.1, 0.9, 0.1)
    instances: int = 100
    seed: int = 2012  # IPDPS year; any fixed value works
    #: Workload-model id (``registry.parse_workload`` syntax); every
    #: config in the grid carries the resolved model.
    workload: str = DEFAULT_WORKLOAD

    def scenario_count(self) -> int:
        return (len(self.services) * len(self.cov_values)
                * len(self.slack_values))

    def instance_count(self) -> int:
        return self.scenario_count() * self.instances

    def configs(self, services: int | None = None) -> Iterator[ScenarioConfig]:
        """All scenario configs, optionally restricted to one service count."""
        model = parse_workload(self.workload)
        service_list = (self.services if services is None else (services,))
        for J in service_list:
            for cov in self.cov_values:
                for slack in self.slack_values:
                    for idx in range(self.instances):
                        yield ScenarioConfig(
                            hosts=self.hosts, services=J, cov=cov,
                            slack=slack, seed=self.seed, instance_index=idx,
                            model=model)


PAPER_GRID = GridSpec()

#: Laptop-scale default: same structure, ~3 orders of magnitude fewer cells.
QUICK_GRID = GridSpec(
    hosts=16,
    services=(30, 60),
    cov_values=(0.0, 0.25, 0.5, 0.75, 1.0),
    slack_values=(0.3, 0.5, 0.7),
    instances=4,
)

#: Minimal grid for tests and CI smoke runs.
SMOKE_GRID = GridSpec(
    hosts=8,
    services=(16,),
    cov_values=(0.0, 0.5),
    slack_values=(0.5,),
    instances=2,
)
