"""The CoV figure family: Figures 2-4 and 8-34.

Each figure fixes (hosts, services, memory slack) and sweeps the platform
coefficient of variation; each point is one instance's minimum-yield
difference from METAHVP for one competitor algorithm, with per-CoV
averages overlaid.  Figures 3 and 4 pin CPU (resp. memory) capacities at
the median.  Points below zero mean METAHVP was beaten on that instance.

Declared as a :class:`~.spec.GridExperiment` via
:func:`cov_figure_experiment`; :func:`run_cov_figure` is the wrapper kept
for existing callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from ..workloads import DEFAULT_WORKLOAD, ScenarioConfig, parse_workload
from .report import format_table, write_csv
from .runner import ProgressCallback, TaskResult
from .spec import GridExperiment

__all__ = ["CovFigureSpec", "CovFigureData", "run_cov_figure",
           "format_cov_figure", "cov_figure_experiment",
           "DEFAULT_COV_COMPETITORS"]

DEFAULT_COV_COMPETITORS = ("RRNZ", "METAGREEDY", "METAVP")
BASELINE = "METAHVP"


@dataclass(frozen=True)
class CovFigureSpec:
    """One figure of the family.

    The paper's headline instance (Figure 2) is 64 hosts, 500 services,
    slack 0.3; Figures 8-34 vary services ∈ {100, 250, 500} and slack
    0.1-0.9.
    """

    hosts: int = 64
    services: int = 500
    slack: float = 0.3
    cov_values: tuple[float, ...] = tuple(
        round(0.025 * i, 6) for i in range(37))  # 0 .. 0.9
    instances: int = 10
    cpu_homogeneous: bool = False
    mem_homogeneous: bool = False
    competitors: tuple[str, ...] = DEFAULT_COV_COMPETITORS
    seed: int = 2012
    workload: str = DEFAULT_WORKLOAD

    def configs(self):
        model = parse_workload(self.workload)
        for cov in self.cov_values:
            for idx in range(self.instances):
                yield ScenarioConfig(
                    hosts=self.hosts, services=self.services, cov=cov,
                    slack=self.slack, seed=self.seed, instance_index=idx,
                    cpu_homogeneous=self.cpu_homogeneous,
                    mem_homogeneous=self.mem_homogeneous, model=model)


@dataclass(frozen=True)
class CovFigureData:
    """Scatter points and per-CoV averages, per competitor algorithm."""

    spec: CovFigureSpec
    # algorithm -> list of (cov, yield difference from METAHVP); instances
    # where either algorithm failed are omitted (as in the paper's plots).
    points: Mapping[str, tuple[tuple[float, float], ...]]
    # algorithm -> {cov: average difference}
    averages: Mapping[str, Mapping[float, float]]

    def to_csv(self, path: str) -> None:
        rows = []
        for algo, pts in self.points.items():
            for cov, diff in pts:
                rows.append((algo, cov, diff))
        write_csv(path, ("algorithm", "cov", "yield_diff_vs_metahvp"), rows)


def _reduce_cov(spec: CovFigureSpec,
                stream: Iterator[TaskResult]) -> CovFigureData:
    points: dict[str, list[tuple[float, float]]] = {
        a: [] for a in spec.competitors}
    for task in stream:
        by_algo = task.by_algorithm()
        base = by_algo[BASELINE].min_yield
        if base is None:
            continue
        for a in spec.competitors:
            y = by_algo[a].min_yield
            if y is None:
                continue
            points[a].append((task.config.cov, y - base))
    averages: dict[str, dict[float, float]] = {}
    for a, pts in points.items():
        byc: dict[float, list[float]] = {}
        for cov, diff in pts:
            byc.setdefault(cov, []).append(diff)
        averages[a] = {cov: float(np.mean(v)) for cov, v in sorted(byc.items())}
    return CovFigureData(
        spec,
        {a: tuple(pts) for a, pts in points.items()},
        averages,
    )


def cov_figure_experiment(spec: CovFigureSpec) -> GridExperiment:
    """Declare one CoV figure as a shardable experiment spec."""
    return GridExperiment(
        name="fig-cov",
        configs=spec.configs,
        algorithms=tuple(spec.competitors) + (BASELINE,),
        reduce=lambda exp, stream: _reduce_cov(spec, stream),
        formatter=format_cov_figure,
    )


def run_cov_figure(spec: CovFigureSpec,
                   workers: int | None = None,
                   *,
                   checkpoint=None,
                   resume: bool = False,
                   window: int | None = None,
                   progress: ProgressCallback | None = None) -> CovFigureData:
    return cov_figure_experiment(spec).run(
        workers, checkpoint=checkpoint, resume=resume, window=window,
        progress=progress)


def format_cov_figure(data: CovFigureData) -> str:
    """Text rendering: the per-CoV average series (the figure's avg lines)."""
    spec = data.spec
    variant = ""
    if spec.cpu_homogeneous:
        variant = ", CPU held homogeneous"
    elif spec.mem_homogeneous:
        variant = ", memory held homogeneous"
    title = (f"Min-yield difference vs {BASELINE} — {spec.hosts} hosts, "
             f"{spec.services} services, slack {spec.slack}{variant}")
    covs = sorted({cov for avg in data.averages.values() for cov in avg})
    headers = ["cov"] + [f"{a} (avg)" for a in data.spec.competitors]
    rows = []
    for cov in covs:
        row: list[object] = [f"{cov:.3f}"]
        for a in data.spec.competitors:
            v = data.averages.get(a, {}).get(cov)
            row.append("-" if v is None else f"{v:+.4f}")
        rows.append(row)
    text = format_table(headers, rows, title=title)
    populated = {a: avg for a, avg in data.averages.items() if avg}
    if populated:
        from .ascii_plot import line_chart
        text += "\n\n" + line_chart(populated, x_label="cov",
                                    title="(average series, charted)")
    return text
