"""Persistence of grid results and streaming checkpoints.

The full paper grid is expensive; persisting per-instance results as
JSON-lines lets long runs be split across sessions/machines and merged
afterwards.  Each line is self-describing: the scenario coordinates plus
every algorithm's outcome, so files from different grids can be safely
concatenated and re-filtered.

Two kinds of line share the ``.jsonl`` files:

* **task records** (``{"v": 1, "config": ..., "results": ...}``) — one
  :class:`~.runner.TaskResult` each; written by :func:`save_results` /
  :func:`append_results` and by :class:`ResultStore`.
* **checkpoint records** (``{"v": 1, "kind": ..., "key": ...,
  "payload": ...}``) — generic key→payload entries used by the error-figure
  and strategy-ranking drivers via :class:`JsonlCheckpoint`.

Loaders skip lines of the other kind, so one file can serve as a shared
checkpoint.  Checkpoint loads also tolerate a truncated *final* line — the
signature of a run killed mid-write — by ignoring it; the interrupted task
simply reruns on resume.
"""

from __future__ import annotations

import json
import os
from typing import IO, Callable, Iterable, Iterator, Optional, Sequence

from .. import obs
from ..workloads import (
    ScenarioConfig,
    workload_from_json,
    workload_id,
    workload_to_json,
)
from .runner import AlgorithmResult, TaskResult

__all__ = [
    "FORMAT_VERSION",
    "CompactStats",
    "JsonlCheckpoint",
    "ResultStore",
    "append_results",
    "as_jsonl_checkpoint",
    "as_result_store",
    "compact_checkpoint",
    "durable_append",
    "fingerprinted_cache",
    "load_results",
    "merge_checkpoints",
    "merge_results",
    "open_append",
    "recover_records",
    "save_results",
    "scenario_key",
    "task_from_dict",
    "task_key",
    "task_to_dict",
]

FORMAT_VERSION = 1

_CONFIG_FIELDS = ("hosts", "services", "cov", "slack", "cpu_homogeneous",
                  "mem_homogeneous", "seed", "instance_index")


def scenario_key(config: ScenarioConfig) -> tuple:
    """The grid coordinates identifying one scenario cell.

    The workload model's canonical id is part of the key, so a checkpoint
    written under one model can never silently answer a resume under
    another — the mismatched key simply isn't found and the task reruns.
    Records predating the registry carry no workload entry and load as the
    default Google model, whose id they always were.
    """
    return tuple(getattr(config, f) for f in _CONFIG_FIELDS) \
        + (workload_id(config.model),)


def task_key(config: ScenarioConfig, algorithms: Sequence[str]) -> tuple:
    """Checkpoint identity of one task: scenario cell + algorithm set.

    Including the algorithm tuple keeps a Table-1 checkpoint (5 algorithms)
    from answering a Table-2 resume (4 algorithms) with the wrong result
    shape.
    """
    return scenario_key(config) + (tuple(algorithms),)


def task_to_dict(task: TaskResult) -> dict:
    cfg = task.config
    config = {f: getattr(cfg, f) for f in _CONFIG_FIELDS}
    config["workload"] = workload_to_json(cfg.model)
    return {
        "v": FORMAT_VERSION,
        "config": config,
        "results": [
            {"algorithm": r.algorithm, "min_yield": r.min_yield,
             "seconds": r.seconds}
            for r in task.results
        ],
    }


def task_from_dict(data: dict) -> TaskResult:
    if data.get("v") != FORMAT_VERSION:
        raise ValueError(f"unsupported results format version: {data.get('v')!r}")
    fields = dict(data["config"])
    model = workload_from_json(fields.pop("workload", None))
    cfg = ScenarioConfig(model=model, **fields)
    results = tuple(
        AlgorithmResult(r["algorithm"], r["min_yield"], r["seconds"])
        for r in data["results"]
    )
    return TaskResult(cfg, results)


def _open_append(path: str) -> IO[str]:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    return open(path, "a")


def _durable_append(fh: IO[str], line: str) -> None:
    """One checkpoint line: write + flush + fsync, traced when obs is on.

    The fsync dominates checkpoint latency (device-dependent, easily
    milliseconds); the ``checkpoint.write`` span makes that cost visible
    in sweep traces instead of silently inflating per-task time.
    """
    if not obs.enabled():
        fh.write(line)
        fh.flush()
        os.fsync(fh.fileno())
        return
    with obs.span("checkpoint.write") as sp:
        sp.annotate(bytes=len(line))
        fh.write(line)
        fh.flush()
        os.fsync(fh.fileno())


def _rewrite_keeping(path: str, keep: Callable[[dict], bool]) -> None:
    """Rewrite *path* with only the records matching *keep* (a predicate).

    Used by the ``resume=False`` stores: "truncate" means dropping *this
    store's* records while preserving foreign ones, since several
    checkpoints may share one file.  A partial final line is dropped.
    """
    kept = [rec for rec in _iter_records(path, tolerate_partial=True)
            if keep(rec)]
    if not kept:
        os.remove(path)
        return
    with open(path, "w") as fh:
        for rec in kept:
            fh.write(json.dumps(rec) + "\n")


def _iter_records(path: str, tolerate_partial: bool = False
                  ) -> Iterator[dict]:
    """Yield parsed JSON records from *path*.

    With ``tolerate_partial``, an unparseable *final* line is ignored (a
    crash mid-append leaves exactly that); garbage anywhere else still
    raises, since it means the file is not one of ours.
    """
    with open(path) as fh:
        lines = fh.readlines()
    for lineno, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError as exc:
            if tolerate_partial and lineno == len(lines) - 1:
                return
            raise ValueError(
                f"{path}:{lineno + 1}: not a results/checkpoint record "
                f"({exc})") from exc


def _recover_records(path: str) -> list[dict]:
    """Read records for a store that will *append* to *path*, repairing a
    crash-damaged tail in place.

    A run killed mid-append leaves either a partial final line or a final
    record missing its newline.  Reading alone isn't enough — the next
    append would glue onto that tail, corrupting the record (and, once
    more lines follow, the whole file).  So: an unparseable final line is
    truncated away (that task simply reruns); a parseable final record
    merely missing its newline gets the newline restored.  Garbage
    anywhere else still raises.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    records: list[dict] = []
    good_end = 0
    offset = 0
    for line in raw.splitlines(keepends=True):
        offset += len(line)
        stripped = line.strip()
        if stripped:
            try:
                records.append(json.loads(stripped))
            except json.JSONDecodeError as exc:
                if offset >= len(raw):  # partial final line: drop it
                    break
                lineno = raw[:offset].count(b"\n")
                raise ValueError(
                    f"{path}:{lineno}: not a results/checkpoint record "
                    f"({exc})") from exc
        good_end = offset
    if good_end < len(raw):
        with open(path, "r+b") as fh:
            fh.truncate(good_end)
    elif raw and not raw.endswith(b"\n"):  # complete record, no newline
        with open(path, "ab") as fh:
            fh.write(b"\n")
    return records


# The append-only JSONL discipline — durable line writes plus tail repair
# on reopen — is not checkpoint-specific; the service event journal
# (``repro.service.journal``) builds on the same primitives.
open_append = _open_append
durable_append = _durable_append
recover_records = _recover_records


def save_results(results: Sequence[TaskResult], path: str) -> None:
    """Write results as JSON-lines (overwrites *path*)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        for task in results:
            fh.write(json.dumps(task_to_dict(task)) + "\n")


def append_results(results: Sequence[TaskResult], path: str) -> None:
    """Append results to an existing JSON-lines file (or create it)."""
    with _open_append(path) as fh:
        for task in results:
            fh.write(json.dumps(task_to_dict(task)) + "\n")


def load_results(path: str) -> list[TaskResult]:
    """Load every task record in *path* (checkpoint records are skipped).

    A partial final line — the signature of a run killed mid-append — is
    ignored, so checkpoints from dead machines merge without repair.
    """
    return [task_from_dict(rec)
            for rec in _iter_records(path, tolerate_partial=True)
            if "kind" not in rec]


def merge_results(result_sets: Iterable[Sequence[TaskResult]]
                  ) -> list[TaskResult]:
    """Concatenate result sets, dropping duplicate scenario coordinates.

    The *first* occurrence of each (config) wins, so callers can layer a
    re-run on top of an older file and keep the fresh values by passing
    the re-run first.
    """
    seen: set = set()
    merged: list[TaskResult] = []
    for results in result_sets:
        for task in results:
            key = scenario_key(task.config)
            if key in seen:
                continue
            seen.add(key)
            merged.append(task)
    return merged


class ResultStore:
    """Append-only JSONL checkpoint of :class:`TaskResult`s.

    Each completed task is written, flushed and fsynced immediately, so a
    killed run loses at most the tasks still in flight.  Construction with
    ``resume=True`` indexes every task already in the file (keyed by
    :func:`task_key`); ``resume=False`` drops the file's task records while
    preserving any :class:`JsonlCheckpoint` records sharing it.  The file
    stays loadable by :func:`load_results`, so finished checkpoints double
    as result files.

    Appended results are *not* retained in memory — only counted — keeping
    checkpointed sweeps as memory-flat as unchecked ones; ``completed``
    holds just the tasks indexed at construction.
    """

    def __init__(self, path: str, resume: bool = False):
        self.path = path
        self._completed: dict[tuple, TaskResult] = {}
        self._appended = 0
        if resume and os.path.exists(path):
            for rec in _recover_records(path):
                if "kind" in rec:
                    continue
                task = task_from_dict(rec)
                algos = tuple(r.algorithm for r in task.results)
                self._completed[task_key(task.config, algos)] = task
        elif not resume and os.path.exists(path):
            _rewrite_keeping(path, lambda rec: "kind" in rec)
        self._fh: Optional[IO[str]] = None

    @property
    def completed(self) -> dict[tuple, TaskResult]:
        """Tasks on disk at construction time, keyed by :func:`task_key`."""
        return self._completed

    def __len__(self) -> int:
        return len(self._completed) + self._appended

    def append(self, task: TaskResult) -> None:
        if self._fh is None:
            self._fh = _open_append(self.path)
        _durable_append(self._fh, json.dumps(task_to_dict(task)) + "\n")
        self._appended += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def as_result_store(checkpoint: "str | ResultStore | None",
                    resume: bool = False) -> Optional[ResultStore]:
    """Normalize a checkpoint argument: paths are opened (truncating unless
    *resume*), stores pass through, ``None`` stays ``None``.

    Drivers that run several grids against one checkpoint file open the
    store once with this and hand the *store* down, so the truncation
    decision happens exactly once.
    """
    if checkpoint is None or isinstance(checkpoint, ResultStore):
        return checkpoint
    return ResultStore(checkpoint, resume=resume)


class JsonlCheckpoint:
    """Generic append-only key→payload checkpoint for non-grid sweeps.

    Records carry a ``kind`` tag so several checkpoints (and task records)
    can share one file; loading filters to this instance's kind, and
    ``resume=False`` drops only this kind's records from a shared file.
    Keys are JSON values (typically ``[fingerprint, index]`` lists)
    compared after a canonical round-trip, so tuples and lists are
    interchangeable.  As with :class:`ResultStore`, appends are counted
    but not retained in memory.
    """

    def __init__(self, path: str, kind: str, resume: bool = False):
        self.path = path
        self.kind = kind
        self._completed: dict[str, object] = {}
        self._appended = 0
        if resume and os.path.exists(path):
            for rec in _recover_records(path):
                if rec.get("kind") != kind:
                    continue
                if rec.get("v") != FORMAT_VERSION:
                    raise ValueError(
                        f"unsupported checkpoint version: {rec.get('v')!r}")
                self._completed[self._canon(rec["key"])] = rec["payload"]
        elif not resume and os.path.exists(path):
            _rewrite_keeping(path, lambda rec: rec.get("kind") != kind)
        self._fh: Optional[IO[str]] = None

    @staticmethod
    def _canon(key: object) -> str:
        return json.dumps(key, sort_keys=True)

    @property
    def completed(self) -> dict:
        """Payloads on disk at construction, keyed by canonical JSON key."""
        return self._completed

    def key(self, key: object) -> str:
        """Canonical form of *key* for ``completed`` lookups."""
        return self._canon(key)

    def __len__(self) -> int:
        return len(self._completed) + self._appended

    def append(self, key: object, payload: object) -> None:
        if self._fh is None:
            self._fh = _open_append(self.path)
        record = {"v": FORMAT_VERSION, "kind": self.kind,
                  "key": key, "payload": payload}
        _durable_append(self._fh, json.dumps(record) + "\n")
        self._appended += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlCheckpoint":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def as_jsonl_checkpoint(checkpoint: "str | JsonlCheckpoint | None",
                        kind: str,
                        resume: bool = False) -> Optional[JsonlCheckpoint]:
    """:func:`as_result_store`'s analogue for :class:`JsonlCheckpoint`."""
    if checkpoint is None or isinstance(checkpoint, JsonlCheckpoint):
        return checkpoint
    return JsonlCheckpoint(checkpoint, kind=kind, resume=resume)


class CompactStats:
    """Outcome of :func:`compact_checkpoint`."""

    def __init__(self, kept: int, superseded: int, foreign: int):
        self.kept = kept
        self.superseded = superseded
        self.foreign = foreign

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CompactStats(kept={self.kept}, "
                f"superseded={self.superseded}, foreign={self.foreign})")


def _record_identity(rec: dict, ordinal: int) -> tuple:
    """The key under which a resume loader would index *rec*.

    A kind-tagged record without a ``key`` field belongs to some other
    tool; it gets a per-occurrence identity (*ordinal*) so it is
    preserved verbatim and never deduplicated.
    """
    if "kind" in rec:
        if "key" not in rec:
            return ("opaque", ordinal)
        return ("ckpt", rec.get("kind"), JsonlCheckpoint._canon(rec["key"]))
    task = task_from_dict(rec)  # validates the format version
    algos = tuple(r.algorithm for r in task.results)
    return ("task", task_key(task.config, algos))


def compact_checkpoint(path: str, output: Optional[str] = None,
                       kinds: Optional[Sequence[str]] = None) -> CompactStats:
    """Garbage-collect a JSONL checkpoint.

    Resumed-over-resumed (or crash-repaired) files accumulate superseded
    records: several lines with the same identity, of which a resume
    loader only ever uses the *last*.  This rewrite keeps exactly that
    surviving record per identity (task records keyed by scenario cell +
    algorithm set, checkpoint records by kind + key), in first-appearance
    order, dropping a partial final line as the loaders do.  With *kinds*
    given, records of any other kind — "foreign" entries sharing the file
    — are dropped as well (task records compact under the pseudo-kind
    ``"task"``).

    The rewrite is atomic (temp file + rename).  *output* redirects it;
    default is in place.  Returns :class:`CompactStats`.
    """
    survivors: dict[tuple, dict] = {}
    foreign = 0
    total = 0
    keep_kinds = None if kinds is None else set(kinds)
    for rec in _iter_records(path, tolerate_partial=True):
        total += 1
        kind = rec.get("kind", "task")
        if keep_kinds is not None and kind not in keep_kinds:
            foreign += 1
            continue
        # Later duplicates replace the payload in place: the loader would
        # use the newest record, while dict insertion order preserves the
        # identity's first appearance in the file.
        survivors[_record_identity(rec, total)] = rec
    superseded = total - foreign - len(survivors)
    _write_records_atomic(output or path, survivors.values())
    return CompactStats(len(survivors), superseded, foreign)


def _write_records_atomic(out_path: str, records: Iterable[dict]) -> None:
    """Write *records* as JSONL via a temp file + fsync + rename, so a
    crash mid-rewrite never leaves a half-written checkpoint."""
    parent = os.path.dirname(out_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = out_path + ".rewrite-tmp"
    with open(tmp, "w") as fh:
        for rec in records:
            fh.write(json.dumps(rec) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, out_path)


def merge_checkpoints(paths: Sequence[str], output: str) -> CompactStats:
    """Concatenate shard checkpoints into one de-duplicated file.

    Records are read from *paths* in order; the first occurrence of each
    identity wins (mirroring :func:`merge_results`), so layering a re-run
    over older shards keeps the fresh values by listing the re-run first.
    Task records and :class:`JsonlCheckpoint` records both merge; a
    partial final line in any shard — a run killed mid-append — is
    skipped.  The merged file is written atomically and stays loadable by
    every resume/collect path, so it doubles as a combined result file.
    """
    survivors: dict[tuple, dict] = {}
    total = 0
    for path in paths:
        for rec in _iter_records(path, tolerate_partial=True):
            total += 1
            survivors.setdefault(_record_identity(rec, total), rec)
    _write_records_atomic(output, survivors.values())
    return CompactStats(kept=len(survivors),
                        superseded=total - len(survivors), foreign=0)


def fingerprinted_cache(ckpt: Optional[JsonlCheckpoint], fingerprint: str,
                        decode: Callable[[list, object], object]) -> dict:
    """Rebuild a ``parallel_imap_cached`` cache from a checkpoint.

    Keys follow the ``[fingerprint, index]`` convention; only this
    fingerprint's payloads are decoded (a shared file may hold payloads of
    other sweeps, whose keys can never match).  ``decode(key, payload)``
    turns a stored payload back into the in-memory value.
    """
    cache: dict = {}
    if ckpt is None:
        return cache
    for canon, payload in ckpt.completed.items():
        key = json.loads(canon)
        if key[0] == fingerprint:
            cache[canon] = decode(key, payload)
    return cache
