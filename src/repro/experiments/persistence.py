"""Persistence of grid results.

The full paper grid is expensive; persisting per-instance results as
JSON-lines lets long runs be split across sessions/machines and merged
afterwards.  Each line is self-describing: the scenario coordinates plus
every algorithm's outcome, so files from different grids can be safely
concatenated and re-filtered.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Iterator, Sequence

from ..workloads import ScenarioConfig
from .runner import AlgorithmResult, TaskResult

__all__ = ["save_results", "load_results", "append_results", "merge_results"]

FORMAT_VERSION = 1


def _task_to_dict(task: TaskResult) -> dict:
    cfg = task.config
    return {
        "v": FORMAT_VERSION,
        "config": {
            "hosts": cfg.hosts,
            "services": cfg.services,
            "cov": cfg.cov,
            "slack": cfg.slack,
            "cpu_homogeneous": cfg.cpu_homogeneous,
            "mem_homogeneous": cfg.mem_homogeneous,
            "seed": cfg.seed,
            "instance_index": cfg.instance_index,
        },
        "results": [
            {"algorithm": r.algorithm, "min_yield": r.min_yield,
             "seconds": r.seconds}
            for r in task.results
        ],
    }


def _task_from_dict(data: dict) -> TaskResult:
    if data.get("v") != FORMAT_VERSION:
        raise ValueError(f"unsupported results format version: {data.get('v')!r}")
    cfg = ScenarioConfig(**data["config"])
    results = tuple(
        AlgorithmResult(r["algorithm"], r["min_yield"], r["seconds"])
        for r in data["results"]
    )
    return TaskResult(cfg, results)


def save_results(results: Sequence[TaskResult], path: str) -> None:
    """Write results as JSON-lines (overwrites *path*)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        for task in results:
            fh.write(json.dumps(_task_to_dict(task)) + "\n")


def append_results(results: Sequence[TaskResult], path: str) -> None:
    """Append results to an existing JSON-lines file (or create it)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as fh:
        for task in results:
            fh.write(json.dumps(_task_to_dict(task)) + "\n")


def load_results(path: str) -> list[TaskResult]:
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(_task_from_dict(json.loads(line)))
    return out


def merge_results(result_sets: Iterable[Sequence[TaskResult]]
                  ) -> list[TaskResult]:
    """Concatenate result sets, dropping duplicate scenario coordinates.

    The *first* occurrence of each (config) wins, so callers can layer a
    re-run on top of an older file and keep the fresh values by passing
    the re-run first.
    """
    seen: set = set()
    merged: list[TaskResult] = []
    for results in result_sets:
        for task in results:
            key = (task.config.hosts, task.config.services, task.config.cov,
                   task.config.slack, task.config.cpu_homogeneous,
                   task.config.mem_homogeneous, task.config.seed,
                   task.config.instance_index)
            if key in seen:
                continue
            seen.add(key)
            merged.append(task)
    return merged
