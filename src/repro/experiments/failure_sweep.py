"""Failure sweep: yield, churn cost and SLA compliance under node churn.

The scenario-frontier experiment: one dynamic-hosting simulation per
(node failure rate × SLA mix × instance) cell, with a Markov up/down
platform model (:func:`repro.dynamic.failures.generate_platform_events`)
driving evictions and forced migrations, and per-service SLA classes
setting differentiated minimum-yield floors.  Reported per cell,
averaged over instances:

* average minimum yield across placed services;
* voluntary migrations (re-pack epochs) vs *forced* migrations
  (failure evictions that were re-placed);
* displaced service-steps (evicted and waiting for capacity);
* SLA-violation service-steps, split by class.

Everything derives from ``derive_seed`` off the spec seed, so the sweep
is deterministic end to end and shardable like every other experiment.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..util.rng import derive_seed
from ..workloads import DEFAULT_WORKLOAD, generate_platform, parse_workload
from .report import format_table
from .spec import CheckpointExperiment

CHECKPOINT_KIND = "failure-sweep"

__all__ = ["SLA_MIXES", "FailureSweepSpec", "failure_sweep_experiment",
           "format_failure_sweep"]

#: Named SLA-class mixes swept by the experiment (weights are relative).
SLA_MIXES: Mapping[str, Mapping[str, float]] = {
    "best-effort": {"best-effort": 1.0},
    "mixed": {"gold": 0.2, "silver": 0.3, "best-effort": 0.5},
    "strict": {"gold": 0.5, "silver": 0.5},
}


@dataclass(frozen=True)
class FailureSweepSpec:
    """One failure-rate × SLA-mix sweep over the dynamic simulator."""

    hosts: int = 12
    horizon: int = 40
    arrival_rate: float = 2.0
    lifetime: float = 10.0
    failure_rates: tuple[float, ...] = (0.0, 0.02, 0.05)
    recovery_rate: float = 0.5
    sla_mixes: tuple[str, ...] = ("best-effort", "mixed")
    reallocation_period: int = 4
    instances: int = 3
    cov: float = 0.5
    cpu_need_scale: float = 0.05
    seed: int = 2012
    #: Workload-model id; part of the checkpoint fingerprint.
    workload: str = DEFAULT_WORKLOAD

    def __post_init__(self) -> None:
        unknown = [m for m in self.sla_mixes if m not in SLA_MIXES]
        if unknown:
            raise ValueError(
                f"unknown SLA mixes {unknown}; choose from "
                f"{sorted(SLA_MIXES)}")


@dataclass(frozen=True)
class _CellTask:
    spec: FailureSweepSpec
    failure_rate: float
    mix: str
    instance_index: int
    index: int  # flat position in the spec's task order


def _run_cell(task: _CellTask) -> dict:
    """One simulation cell; module-level so worker pools can pickle it."""
    from ..algorithms import metahvp_light
    from ..dynamic import (
        DynamicSimulator,
        generate_platform_events,
        generate_trace,
    )
    spec = task.spec
    base = spec.seed
    idx = task.instance_index
    # derive_seed paths are integer coordinates; use the cell's grid
    # position (stable: part of the fingerprint via the spec fields).
    mix_idx = spec.sla_mixes.index(task.mix)
    rate_idx = spec.failure_rates.index(task.failure_rate)
    platform = generate_platform(
        hosts=spec.hosts, cov=spec.cov,
        rng=derive_seed(base, 1, idx))
    trace = generate_trace(
        horizon=spec.horizon,
        mean_arrivals_per_step=spec.arrival_rate,
        mean_lifetime_steps=spec.lifetime,
        model=parse_workload(spec.workload),
        rng=derive_seed(base, 2, mix_idx, idx),
        initial_services=spec.hosts,
        sla_mix=SLA_MIXES[task.mix])
    failures = None
    if task.failure_rate > 0:
        failures = generate_platform_events(
            horizon=spec.horizon, n_nodes=spec.hosts,
            failure_rate=task.failure_rate,
            recovery_rate=spec.recovery_rate,
            rng=derive_seed(base, 3, rate_idx, idx))
    sim = DynamicSimulator(
        platform, trace, placer=metahvp_light(),
        reallocation_period=spec.reallocation_period,
        cpu_need_scale=spec.cpu_need_scale,
        rng=derive_seed(base, 4, rate_idx, mix_idx, idx),
        failures=failures)
    result = sim.run()
    return {
        "failure_rate": task.failure_rate,
        "mix": task.mix,
        "avg_min_yield": result.average_min_yield,
        "avg_pending": result.average_pending,
        "migrations": result.total_migrations,
        "forced_migrations": result.total_forced_migrations,
        "displaced_steps": result.displaced_service_steps,
        "sla_violations": dict(result.sla_violations),
        "failed_node_steps": sum(s.failed_nodes for s in result.steps),
    }


def _spec_fingerprint(spec: FailureSweepSpec) -> str:
    fields = dataclasses.asdict(spec)
    fields.pop("instances")  # payloads are per-instance; growing reuses
    blob = json.dumps(fields, sort_keys=True)
    return hashlib.sha1(blob.encode()).hexdigest()[:12]


def _reduce(spec: FailureSweepSpec, payloads) -> dict:
    """Average every cell's payloads over its instances, in sweep order."""
    cells: dict[tuple[float, str], list[dict]] = {}
    for p in payloads:
        cells.setdefault((p["failure_rate"], p["mix"]), []).append(p)
    rows = []
    for rate in spec.failure_rates:
        for mix in spec.sla_mixes:
            group = cells.get((rate, mix), [])
            if not group:
                continue
            viol: dict[str, float] = {}
            for p in group:
                for name, count in p["sla_violations"].items():
                    viol[name] = viol.get(name, 0.0) + count
            rows.append({
                "failure_rate": rate,
                "mix": mix,
                "avg_min_yield": float(np.mean(
                    [p["avg_min_yield"] for p in group])),
                "avg_pending": float(np.mean(
                    [p["avg_pending"] for p in group])),
                "migrations": float(np.mean(
                    [p["migrations"] for p in group])),
                "forced_migrations": float(np.mean(
                    [p["forced_migrations"] for p in group])),
                "displaced_steps": float(np.mean(
                    [p["displaced_steps"] for p in group])),
                "failed_node_steps": float(np.mean(
                    [p["failed_node_steps"] for p in group])),
                "sla_violations": {name: total / len(group)
                                   for name, total in sorted(viol.items())},
            })
    return {"spec": spec, "rows": rows}


def format_failure_sweep(data: dict) -> str:
    spec: FailureSweepSpec = data["spec"]
    table_rows = []
    for row in data["rows"]:
        viol = row["sla_violations"]
        viol_text = ", ".join(f"{name}={count:.1f}"
                              for name, count in viol.items()
                              if count > 0) or "none"
        table_rows.append((
            f"{row['failure_rate']:g}",
            row["mix"],
            f"{row['avg_min_yield']:.3f}",
            f"{row['migrations']:.1f}",
            f"{row['forced_migrations']:.1f}",
            f"{row['displaced_steps']:.1f}",
            viol_text,
        ))
    return format_table(
        ("failure rate", "SLA mix", "avg min yield", "migrations",
         "forced", "displaced steps", "SLA violations"),
        table_rows,
        title=(f"Failure sweep on {spec.hosts} hosts, horizon "
               f"{spec.horizon}, re-pack period "
               f"{spec.reallocation_period}, recovery rate "
               f"{spec.recovery_rate:g} ({spec.instances} instances)"))


def failure_sweep_experiment(spec: FailureSweepSpec) -> CheckpointExperiment:
    """Declare the failure sweep as a shardable experiment spec."""
    tasks = []
    index = 0
    for rate in spec.failure_rates:
        for mix in spec.sla_mixes:
            for idx in range(spec.instances):
                tasks.append(_CellTask(spec, rate, mix, idx, index))
                index += 1
    return CheckpointExperiment(
        name="failure-sweep",
        kind=CHECKPOINT_KIND,
        fingerprint=_spec_fingerprint(spec),
        tasks=tuple(tasks),
        worker=_run_cell,
        index_of=lambda task: task.index,
        encode=lambda payload: payload,
        decode=lambda index, payload: payload,
        reduce=lambda exp, payloads: _reduce(spec, payloads),
        formatter=format_failure_sweep,
    )
