"""Plain-text and CSV rendering of experiment outputs.

The paper reports tables and gnuplot figures; this harness prints aligned
text tables with the same rows/series and writes CSV files next to them so
any plotting tool can regenerate the graphics.
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_matrix", "write_csv", "ensure_dir"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Monospace table with per-column alignment."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_matrix(row_names: Sequence[str], col_names: Sequence[str],
                  cells: Mapping[tuple[str, str], str],
                  corner: str = "A/B", title: str = "") -> str:
    """Paper-style pairwise matrix (rows = A, columns = B)."""
    headers = [corner, *col_names]
    rows = []
    for a in row_names:
        rows.append([a] + [cells.get((a, b), "") for b in col_names])
    return format_table(headers, rows, title=title)


def write_csv(path: str, headers: Sequence[str],
              rows: Iterable[Sequence[object]]) -> None:
    ensure_dir(os.path.dirname(path))
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)


def ensure_dir(path: str) -> None:
    if path:
        os.makedirs(path, exist_ok=True)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
