"""The §5.1 strategy-ranking exploration that motivated METAHVPLIGHT.

The paper sorted the 253 basic HVP strategies "first by success rate,
then by average achieved minimum yield", inspected the top 50 per
dataset, and observed that (1) all three packers appear when paired with
the right sorts, (2) descending MAX / SUM / MAXDIFFERENCE (and sometimes
MAXRATIO) dominate the item sorts, and (3) ascending LEX / MAX / SUM plus
a few descending bin sorts and NONE dominate the bin sorts — those
observations define the 60-strategy LIGHT subset.

This module reruns that exploration on any grid so the LIGHT design can
be audited (and re-derived for new workload families).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..algorithms.vector_packing import (
    VPStrategy,
    hvp_light_strategies,
    hvp_strategies,
)
from ..algorithms.vector_packing.meta import single_strategy_algorithm
from ..util.parallel import parallel_map
from ..workloads import ScenarioConfig, generate_instance
from .report import format_table

__all__ = ["StrategyRanking", "rank_strategies", "format_ranking",
           "light_set_audit"]


@dataclass(frozen=True)
class StrategyStats:
    strategy: VPStrategy
    successes: int
    attempts: int
    average_yield: float

    @property
    def success_rate(self) -> float:
        return self.successes / self.attempts if self.attempts else 0.0

    def sort_key(self) -> tuple[float, float]:
        """Paper's ordering: success rate first, then average yield."""
        return (self.success_rate, self.average_yield)


@dataclass(frozen=True)
class StrategyRanking:
    """All strategies ordered best-first by the §5.1 criterion."""

    stats: tuple[StrategyStats, ...]

    def top(self, n: int = 50) -> tuple[StrategyStats, ...]:
        return self.stats[:n]

    def packer_counts(self, n: int = 50) -> Mapping[str, int]:
        return Counter(s.strategy.packer for s in self.top(n))

    def item_sort_counts(self, n: int = 50) -> Mapping[str, int]:
        return Counter(s.strategy.item_sort.name for s in self.top(n))

    def bin_sort_counts(self, n: int = 50) -> Mapping[str, int]:
        return Counter(s.strategy.bin_sort.name for s in self.top(n)
                       if s.strategy.packer != "BF")


@dataclass(frozen=True)
class _StrategyTask:
    strategy_index: int
    configs: tuple[ScenarioConfig, ...]


def _evaluate_strategy(task: _StrategyTask) -> StrategyStats:
    strategy = hvp_strategies()[task.strategy_index]
    algo = single_strategy_algorithm(strategy)
    yields = []
    successes = 0
    for cfg in task.configs:
        alloc = algo(generate_instance(cfg))
        if alloc is not None:
            successes += 1
            yields.append(alloc.minimum_yield())
    return StrategyStats(
        strategy=strategy,
        successes=successes,
        attempts=len(task.configs),
        average_yield=float(np.mean(yields)) if yields else 0.0,
    )


def rank_strategies(configs: Sequence[ScenarioConfig],
                    workers: int | None = None) -> StrategyRanking:
    """Evaluate every basic HVP strategy on *configs* and rank them."""
    configs = tuple(configs)
    tasks = [_StrategyTask(i, configs) for i in range(len(hvp_strategies()))]
    stats = parallel_map(_evaluate_strategy, tasks, workers=workers)
    ordered = tuple(sorted(stats, key=StrategyStats.sort_key, reverse=True))
    return StrategyRanking(ordered)


def light_set_audit(ranking: StrategyRanking, top_n: int = 50
                    ) -> tuple[int, int]:
    """How many of the top-N ranked strategies are in the LIGHT set?

    Returns ``(hits, top_n)``.  The paper designed LIGHT from exactly this
    inspection, so a healthy fraction of the top strategies should be
    LIGHT members on workloads resembling §4's.
    """
    light_names = {s.name for s in hvp_light_strategies()}
    hits = sum(1 for s in ranking.top(top_n)
               if s.strategy.name in light_names)
    return hits, min(top_n, len(ranking.stats))


def format_ranking(ranking: StrategyRanking, top_n: int = 20) -> str:
    rows = []
    for i, s in enumerate(ranking.top(top_n), start=1):
        rows.append((i, s.strategy.name, f"{s.success_rate * 100:.0f}%",
                     f"{s.average_yield:.4f}"))
    table = format_table(("rank", "strategy", "success", "avg yield"), rows,
                         title=f"Top {top_n} of {len(ranking.stats)} basic "
                               f"HVP strategies (§5.1 ordering)")
    packers = ", ".join(f"{k}: {v}" for k, v in
                        sorted(ranking.packer_counts(50).items()))
    items = ", ".join(f"{k}: {v}" for k, v in sorted(
        ranking.item_sort_counts(50).items(), key=lambda kv: -kv[1]))
    bins = ", ".join(f"{k}: {v}" for k, v in sorted(
        ranking.bin_sort_counts(50).items(), key=lambda kv: -kv[1]))
    hits, n = light_set_audit(ranking)
    return "\n".join([
        table,
        "",
        f"Top-50 packer mix:    {packers}",
        f"Top-50 item sorts:    {items}",
        f"Top-50 bin sorts:     {bins}",
        f"LIGHT members in top {n}: {hits}",
    ])
