"""The §5.1 strategy-ranking exploration that motivated METAHVPLIGHT.

The paper sorted the 253 basic HVP strategies "first by success rate,
then by average achieved minimum yield", inspected the top 50 per
dataset, and observed that (1) all three packers appear when paired with
the right sorts, (2) descending MAX / SUM / MAXDIFFERENCE (and sometimes
MAXRATIO) dominate the item sorts, and (3) ascending LEX / MAX / SUM plus
a few descending bin sorts and NONE dominate the bin sorts — those
observations define the 60-strategy LIGHT subset.

This module reruns that exploration on any grid so the LIGHT design can
be audited (and re-derived for new workload families).
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..algorithms.vector_packing import (
    MetaProbeEngine,
    VPStrategy,
    YieldProbeFactory,
    hvp_light_strategies,
    hvp_strategies,
)
from ..algorithms.vector_packing.meta import DEFAULT_ENGINE, single_strategy_algorithm
from ..algorithms.yield_search import binary_search_max_yield
from ..workloads import ScenarioConfig, generate_instance
from .persistence import scenario_key
from .report import format_table
from .spec import CheckpointExperiment

CHECKPOINT_KIND = "strategy-rank"

__all__ = ["StrategyRanking", "rank_strategies", "format_ranking",
           "light_set_audit", "strategy_ranking_experiment"]


@dataclass(frozen=True)
class StrategyStats:
    strategy: VPStrategy
    successes: int
    attempts: int
    average_yield: float

    @property
    def success_rate(self) -> float:
        return self.successes / self.attempts if self.attempts else 0.0

    def sort_key(self) -> tuple[float, float]:
        """Paper's ordering: success rate first, then average yield."""
        return (self.success_rate, self.average_yield)


@dataclass(frozen=True)
class StrategyRanking:
    """All strategies ordered best-first by the §5.1 criterion."""

    stats: tuple[StrategyStats, ...]

    def top(self, n: int = 50) -> tuple[StrategyStats, ...]:
        return self.stats[:n]

    def packer_counts(self, n: int = 50) -> Mapping[str, int]:
        return Counter(s.strategy.packer for s in self.top(n))

    def item_sort_counts(self, n: int = 50) -> Mapping[str, int]:
        return Counter(s.strategy.item_sort.name for s in self.top(n))

    def bin_sort_counts(self, n: int = 50) -> Mapping[str, int]:
        return Counter(s.strategy.bin_sort.name for s in self.top(n)
                       if s.strategy.packer != "BF")


@dataclass(frozen=True)
class _StrategyTask:
    strategy_index: int
    configs: tuple[ScenarioConfig, ...]
    engine: str = DEFAULT_ENGINE
    #: Seed each config's yield search with the previous config's
    #: certified yield *for this same strategy* (see PR 4's warm starts).
    #: The chain lives entirely inside the task, so checkpoint resume and
    #: sharding see identical results.
    warm_start: bool = True


#: Per-process cache of (config → YieldProbeFactory): all 253 strategy
#: tasks evaluated in one worker share the instance and its per-instance
#: probe precomputation (yield-threshold tables, static bin orders).
_FACTORY_CACHE: dict[ScenarioConfig, YieldProbeFactory] = {}
_FACTORY_CACHE_MAX = 8


def _probe_factory(cfg: ScenarioConfig) -> YieldProbeFactory:
    factory = _FACTORY_CACHE.get(cfg)
    if factory is None:
        if len(_FACTORY_CACHE) >= _FACTORY_CACHE_MAX:
            _FACTORY_CACHE.clear()
        factory = YieldProbeFactory(generate_instance(cfg))
        _FACTORY_CACHE[cfg] = factory
    return factory


def _evaluate_strategy(task: _StrategyTask) -> StrategyStats:
    strategy = hvp_strategies()[task.strategy_index]
    if task.engine == "v1":
        algo = single_strategy_algorithm(strategy, engine="v1")

        def solve(cfg, hint):
            return algo(generate_instance(cfg)), None
    else:
        def solve(cfg, hint):
            factory = _probe_factory(cfg)
            oracle = MetaProbeEngine(factory.instance, (strategy,),
                                     factory=factory)
            stats: dict = {}
            alloc = binary_search_max_yield(factory.instance, oracle,
                                            hint=hint, stats=stats)
            return alloc, stats.get("certified")
    yields = []
    successes = 0
    # Per-strategy hint chain: consecutive configs of one task differ
    # only in CoV/instance draw, so the previous config's certified yield
    # is a strong bracket seed for the next search.  Single strategies
    # fail often, and a failure certifies nothing — the chain resets to a
    # cold search after every failed config.
    hint: float | None = None
    for cfg in task.configs:
        alloc, certified = solve(cfg, hint if task.warm_start else None)
        if alloc is not None:
            successes += 1
            yields.append(alloc.minimum_yield())
            hint = certified
        else:
            hint = None
    return StrategyStats(
        strategy=strategy,
        successes=successes,
        attempts=len(task.configs),
        average_yield=float(np.mean(yields)) if yields else 0.0,
    )


def _configs_fingerprint(configs: Sequence[ScenarioConfig],
                         engine: str, warm_start: bool) -> str:
    # The engine and warm-start flag are part of the identity: v1/v2 (and
    # warm/cold searches on a non-monotone single-strategy oracle) certify
    # equal yields only up to the search tolerance, so their checkpoints
    # must not mix.  scenario_key embeds each config's workload-model id.
    blob = json.dumps([[scenario_key(c) for c in configs], engine,
                       warm_start])
    return hashlib.sha1(blob.encode()).hexdigest()[:12]


def _encode_stats(stats: StrategyStats) -> dict:
    return {"strategy": stats.strategy.name, "successes": stats.successes,
            "attempts": stats.attempts, "average_yield": stats.average_yield}


def _decode_stats(index: int, data: dict) -> StrategyStats:
    strategy = hvp_strategies()[index]
    if data["strategy"] != strategy.name:
        raise ValueError(
            f"checkpoint strategy mismatch at index {index}: "
            f"{data['strategy']!r} on disk vs {strategy.name!r} in registry")
    return StrategyStats(strategy=strategy, successes=data["successes"],
                         attempts=data["attempts"],
                         average_yield=data["average_yield"])


def _reduce_ranking(exp: CheckpointExperiment,
                    stats: Sequence[StrategyStats]) -> StrategyRanking:
    ordered = tuple(sorted(stats, key=StrategyStats.sort_key, reverse=True))
    return StrategyRanking(ordered)


def strategy_ranking_experiment(configs: Sequence[ScenarioConfig],
                                engine: str = DEFAULT_ENGINE,
                                warm_start: bool = True,
                                top_n: int = 25) -> CheckpointExperiment:
    """Declare the §5.1 exploration as a shardable experiment spec.

    One task per basic HVP strategy; *top_n* only affects the rendering.
    """
    configs = tuple(configs)
    return CheckpointExperiment(
        name="rank-strategies",
        kind=CHECKPOINT_KIND,
        fingerprint=_configs_fingerprint(configs, engine, warm_start),
        tasks=tuple(_StrategyTask(i, configs, engine, warm_start)
                    for i in range(len(hvp_strategies()))),
        worker=_evaluate_strategy,
        index_of=lambda task: task.strategy_index,
        encode=_encode_stats,
        decode=_decode_stats,
        reduce=_reduce_ranking,
        formatter=lambda ranking: format_ranking(ranking, top_n=top_n),
    )


def rank_strategies(configs: Sequence[ScenarioConfig],
                    workers: int | None = None,
                    *,
                    checkpoint=None,
                    resume: bool = False,
                    window: int | None = None,
                    progress=None,
                    engine: str = DEFAULT_ENGINE,
                    warm_start: bool = True) -> StrategyRanking:
    """Evaluate every basic HVP strategy on *configs* and rank them.

    With *checkpoint*/``resume=True``, per-strategy stats are persisted as
    they complete and already-evaluated strategies (for this exact config
    set, probe engine and warm-start policy) are answered from disk.
    *engine* selects the probe engine ("v2" shares per-instance
    precomputation across all strategies evaluated in a worker process;
    "v1" is the seed path).  *warm_start* chains each strategy's yield
    searches across its configs (cold fallback after failures).
    """
    return strategy_ranking_experiment(configs, engine, warm_start).run(
        workers, checkpoint=checkpoint, resume=resume, window=window,
        progress=progress)


def light_set_audit(ranking: StrategyRanking, top_n: int = 50
                    ) -> tuple[int, int]:
    """How many of the top-N ranked strategies are in the LIGHT set?

    Returns ``(hits, top_n)``.  The paper designed LIGHT from exactly this
    inspection, so a healthy fraction of the top strategies should be
    LIGHT members on workloads resembling §4's.
    """
    light_names = {s.name for s in hvp_light_strategies()}
    hits = sum(1 for s in ranking.top(top_n)
               if s.strategy.name in light_names)
    return hits, min(top_n, len(ranking.stats))


def format_ranking(ranking: StrategyRanking, top_n: int = 20) -> str:
    rows = []
    for i, s in enumerate(ranking.top(top_n), start=1):
        rows.append((i, s.strategy.name, f"{s.success_rate * 100:.0f}%",
                     f"{s.average_yield:.4f}"))
    table = format_table(("rank", "strategy", "success", "avg yield"), rows,
                         title=f"Top {top_n} of {len(ranking.stats)} basic "
                               f"HVP strategies (§5.1 ordering)")
    packers = ", ".join(f"{k}: {v}" for k, v in
                        sorted(ranking.packer_counts(50).items()))
    items = ", ".join(f"{k}: {v}" for k, v in sorted(
        ranking.item_sort_counts(50).items(), key=lambda kv: -kv[1]))
    bins = ", ".join(f"{k}: {v}" for k, v in sorted(
        ranking.bin_sort_counts(50).items(), key=lambda kv: -kv[1]))
    hits, n = light_set_audit(ranking)
    return "\n".join([
        table,
        "",
        f"Top-50 packer mix:    {packers}",
        f"Top-50 item sorts:    {items}",
        f"Top-50 bin sorts:     {bins}",
        f"LIGHT members in top {n}: {hits}",
    ])
