"""Statistical post-processing of experiment results.

The paper reports plain averages over successful instances.  For a
reproduction, that invites a fair question: *are the observed gaps larger
than instance-to-instance noise?*  This module adds the standard tooling
to answer it: bootstrap confidence intervals for means and for paired
differences, and a win/loss/tie decomposition for algorithm pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..util.rng import as_generator

__all__ = ["MeanCI", "bootstrap_mean_ci", "paired_difference_ci",
           "win_loss_tie"]

Result = Optional[float]


@dataclass(frozen=True)
class MeanCI:
    """A mean with a bootstrap confidence interval."""

    mean: float
    lower: float
    upper: float
    confidence: float
    samples: int

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.mean:.4f} [{self.lower:.4f}, {self.upper:.4f}] "
                f"@{self.confidence:.0%} (n={self.samples})")


def _bootstrap(values: np.ndarray, confidence: float, resamples: int,
               rng: np.random.Generator) -> tuple[float, float]:
    n = values.shape[0]
    idx = rng.integers(0, n, size=(resamples, n))
    means = values[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(means, alpha)),
            float(np.quantile(means, 1.0 - alpha)))


def bootstrap_mean_ci(results: Sequence[Result], confidence: float = 0.95,
                      resamples: int = 2000,
                      rng: np.random.Generator | int | None = 0) -> MeanCI:
    """Bootstrap CI of the mean over *successful* results.

    ``None`` entries (failures) are excluded, matching the paper's
    "averages over successful instances" convention.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    values = np.array([r for r in results if r is not None], dtype=np.float64)
    if values.size == 0:
        raise ValueError("no successful results to summarize")
    rng = as_generator(rng)
    if values.size == 1:
        v = float(values[0])
        return MeanCI(v, v, v, confidence, 1)
    lo, hi = _bootstrap(values, confidence, resamples, rng)
    return MeanCI(float(values.mean()), lo, hi, confidence, values.size)


def paired_difference_ci(results_a: Sequence[Result],
                         results_b: Sequence[Result],
                         confidence: float = 0.95,
                         resamples: int = 2000,
                         rng: np.random.Generator | int | None = 0) -> MeanCI:
    """Bootstrap CI of mean(A − B) over commonly-solved instances.

    An interval excluding zero indicates a statistically meaningful gap
    at the chosen confidence.
    """
    if len(results_a) != len(results_b):
        raise ValueError("result vectors must cover the same instances")
    diffs = np.array([a - b for a, b in zip(results_a, results_b)
                      if a is not None and b is not None], dtype=np.float64)
    if diffs.size == 0:
        raise ValueError("no commonly-solved instances")
    rng = as_generator(rng)
    if diffs.size == 1:
        v = float(diffs[0])
        return MeanCI(v, v, v, confidence, 1)
    lo, hi = _bootstrap(diffs, confidence, resamples, rng)
    return MeanCI(float(diffs.mean()), lo, hi, confidence, diffs.size)


def win_loss_tie(results_a: Sequence[Result], results_b: Sequence[Result],
                 margin: float = 0.002) -> tuple[int, int, int]:
    """Per-instance decomposition on commonly-solved instances.

    The paper uses a 0.002 yield margin when counting "METAHVP achieves
    yield values more than 0.002 greater" — the same default applies.
    Returns ``(wins_a, losses_a, ties)``.
    """
    wins = losses = ties = 0
    for a, b in zip(results_a, results_b):
        if a is None or b is None:
            continue
        if a > b + margin:
            wins += 1
        elif b > a + margin:
            losses += 1
        else:
            ties += 1
    return wins, losses, ties
