"""Experiment drivers that regenerate every table and figure (§5-6)."""

from .analysis import (
    MeanCI,
    bootstrap_mean_ci,
    paired_difference_ci,
    win_loss_tie,
)
from .ascii_plot import line_chart, sparkline
from .config import PAPER_GRID, QUICK_GRID, SMOKE_GRID, GridSpec
from .figures_cov import (
    CovFigureData,
    CovFigureSpec,
    cov_figure_experiment,
    format_cov_figure,
    run_cov_figure,
)
from .figures_error import (
    ErrorFigureData,
    ErrorFigureSpec,
    error_figure_experiment,
    format_error_figure,
    run_error_figure,
)
from .metrics import (
    PairwiseComparison,
    average_yield,
    pairwise_comparison,
    success_rate,
)
from .persistence import (
    JsonlCheckpoint,
    ResultStore,
    append_results,
    load_results,
    merge_checkpoints,
    merge_results,
    save_results,
    scenario_key,
    task_key,
)
from .report import format_matrix, format_table, write_csv
from .runner import (
    ALGORITHM_FACTORIES,
    AlgorithmResult,
    TaskResult,
    iter_grid,
    make_algorithms,
    run_grid,
)
from .spec import (
    CheckpointExperiment,
    ExperimentSpec,
    GridExperiment,
    IncompleteResultsError,
    Shard,
    shard_index,
)
from .table1 import Table1Data, format_table1, run_table1, table1_experiment
from .table2 import (
    Table2Data,
    format_table2,
    run_table2,
    table2_experiment,
    table2_from_results,
)

__all__ = [
    "ALGORITHM_FACTORIES",
    "AlgorithmResult",
    "CheckpointExperiment",
    "CovFigureData",
    "CovFigureSpec",
    "ErrorFigureData",
    "ErrorFigureSpec",
    "ExperimentSpec",
    "GridExperiment",
    "GridSpec",
    "IncompleteResultsError",
    "JsonlCheckpoint",
    "MeanCI",
    "PAPER_GRID",
    "PairwiseComparison",
    "QUICK_GRID",
    "ResultStore",
    "SMOKE_GRID",
    "Shard",
    "Table1Data",
    "Table2Data",
    "TaskResult",
    "append_results",
    "average_yield",
    "bootstrap_mean_ci",
    "cov_figure_experiment",
    "error_figure_experiment",
    "format_cov_figure",
    "format_error_figure",
    "format_matrix",
    "format_table",
    "format_table1",
    "format_table2",
    "iter_grid",
    "line_chart",
    "load_results",
    "make_algorithms",
    "merge_checkpoints",
    "merge_results",
    "paired_difference_ci",
    "pairwise_comparison",
    "run_cov_figure",
    "run_error_figure",
    "run_grid",
    "run_table1",
    "run_table2",
    "save_results",
    "scenario_key",
    "shard_index",
    "sparkline",
    "success_rate",
    "table1_experiment",
    "table2_experiment",
    "table2_from_results",
    "task_key",
    "win_loss_tie",
    "write_csv",
]
