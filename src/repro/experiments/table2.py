"""Table 2: algorithm run times (§5).

Mean wall-clock seconds per algorithm and service count, averaged over the
same instance grid as Table 1.  Absolute numbers differ from the paper's
(Python vs the authors' native implementation on a 2.27 GHz Xeon); the
reproduced claims are the *relative* ordering — RRNZ ≫ METAHVP > METAVP ≫
METAGREEDY — the ≈3× METAHVP/METAVP ratio and the ≈10× METAHVPLIGHT
speed-up of §5.1.

Declared as a :class:`~.spec.GridExperiment` with ``warm_chain=False``:
Table 2 reports *standalone* run times, so a solve must not be
accelerated by a sibling algorithm's answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from .config import GridSpec
from .report import format_table
from .runner import ProgressCallback, TaskResult
from .spec import GridExperiment

__all__ = ["Table2Data", "run_table2", "format_table2", "table2_experiment",
           "DEFAULT_TABLE2_ALGORITHMS"]

DEFAULT_TABLE2_ALGORITHMS = ("RRNZ", "METAGREEDY", "METAVP", "METAHVP")


@dataclass(frozen=True)
class Table2Data:
    algorithms: tuple[str, ...]
    mean_seconds: Mapping[int, Mapping[str, float]]  # J -> algo -> seconds
    instance_counts: Mapping[int, int]


def _reduce_table2(spec: GridExperiment,
                   stream: Iterator[TaskResult]) -> Table2Data:
    per_j: dict[int, dict[str, list[float]]] = {}
    counts: dict[int, int] = {}
    for task in stream:
        J = task.config.services
        per_algo = per_j.setdefault(J, {a: [] for a in spec.algorithms})
        counts[J] = counts.get(J, 0) + 1
        for r in task.results:
            per_algo[r.algorithm].append(r.seconds)
    means = {J: {a: float(np.mean(v)) for a, v in per_algo.items()}
             for J, per_algo in per_j.items()}
    return Table2Data(spec.algorithms, means, counts)


def table2_experiment(grid: GridSpec,
                      algorithms: Sequence[str] = DEFAULT_TABLE2_ALGORITHMS
                      ) -> GridExperiment:
    """Declare Table 2 over *grid* as a shardable experiment spec."""
    return GridExperiment(
        name="table2",
        configs=grid.configs,
        algorithms=tuple(algorithms),
        reduce=_reduce_table2,
        formatter=format_table2,
        warm_chain=False,
    )


def run_table2(grid: GridSpec,
               algorithms: Sequence[str] = DEFAULT_TABLE2_ALGORITHMS,
               workers: int | None = None,
               *,
               checkpoint=None,
               resume: bool = False,
               window: int | None = None,
               progress: ProgressCallback | None = None) -> Table2Data:
    return table2_experiment(grid, algorithms).run(
        workers, checkpoint=checkpoint, resume=resume, window=window,
        progress=progress)


def table2_from_results(results_by_j: Mapping[int, Sequence[TaskResult]],
                        algorithms: Sequence[str]) -> Table2Data:
    """Build Table 2 from results already collected (e.g. by Table 1)."""
    algorithms = tuple(algorithms)
    means: dict[int, dict[str, float]] = {}
    counts: dict[int, int] = {}
    for J, results in results_by_j.items():
        per_algo: dict[str, list[float]] = {a: [] for a in algorithms}
        for task in results:
            for r in task.results:
                if r.algorithm in per_algo:
                    per_algo[r.algorithm].append(r.seconds)
        means[J] = {a: float(np.mean(v)) if v else 0.0
                    for a, v in per_algo.items()}
        counts[J] = len(results)
    return Table2Data(algorithms, means, counts)


def format_table2(data: Table2Data) -> str:
    js = sorted(data.mean_seconds)
    headers = ["Algorithm"] + [f"{j} tasks" for j in js]
    rows = []
    for a in data.algorithms:
        rows.append([a] + [f"{data.mean_seconds[j][a]:.3f}" for j in js])
    return format_table(
        headers, rows,
        title="Mean run time in seconds, averaged over all instances")
