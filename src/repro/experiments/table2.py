"""Table 2: algorithm run times (§5).

Mean wall-clock seconds per algorithm and service count, averaged over the
same instance grid as Table 1.  Absolute numbers differ from the paper's
(Python vs the authors' native implementation on a 2.27 GHz Xeon); the
reproduced claims are the *relative* ordering — RRNZ ≫ METAHVP > METAVP ≫
METAGREEDY — the ≈3× METAHVP/METAVP ratio and the ≈10× METAHVPLIGHT
speed-up of §5.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .config import GridSpec
from .persistence import as_result_store
from .report import format_table
from .runner import ProgressCallback, TaskResult, iter_grid

__all__ = ["Table2Data", "run_table2", "format_table2",
           "DEFAULT_TABLE2_ALGORITHMS"]

DEFAULT_TABLE2_ALGORITHMS = ("RRNZ", "METAGREEDY", "METAVP", "METAHVP")


@dataclass(frozen=True)
class Table2Data:
    algorithms: tuple[str, ...]
    mean_seconds: Mapping[int, Mapping[str, float]]  # J -> algo -> seconds
    instance_counts: Mapping[int, int]


def run_table2(grid: GridSpec,
               algorithms: Sequence[str] = DEFAULT_TABLE2_ALGORITHMS,
               workers: int | None = None,
               *,
               checkpoint=None,
               resume: bool = False,
               window: int | None = None,
               progress: ProgressCallback | None = None) -> Table2Data:
    algorithms = tuple(algorithms)
    means: dict[int, dict[str, float]] = {}
    counts: dict[int, int] = {}
    store = as_result_store(checkpoint, resume=resume)
    try:
        for J in grid.services:
            count = 0
            per_algo: dict[str, list[float]] = {a: [] for a in algorithms}
            # warm_chain off: Table 2 reports *standalone* run times, so
            # a solve must not be accelerated by a sibling's answer.
            for task in iter_grid(grid.configs(services=J), algorithms,
                                  workers, window=window, checkpoint=store,
                                  progress=progress, warm_chain=False):
                count += 1
                for r in task.results:
                    per_algo[r.algorithm].append(r.seconds)
            counts[J] = count
            means[J] = {a: float(np.mean(v)) for a, v in per_algo.items()}
    finally:
        if store is not None and store is not checkpoint:
            store.close()
    return Table2Data(algorithms, means, counts)


def table2_from_results(results_by_j: Mapping[int, Sequence[TaskResult]],
                        algorithms: Sequence[str]) -> Table2Data:
    """Build Table 2 from results already collected (e.g. by Table 1)."""
    algorithms = tuple(algorithms)
    means: dict[int, dict[str, float]] = {}
    counts: dict[int, int] = {}
    for J, results in results_by_j.items():
        per_algo: dict[str, list[float]] = {a: [] for a in algorithms}
        for task in results:
            for r in task.results:
                if r.algorithm in per_algo:
                    per_algo[r.algorithm].append(r.seconds)
        means[J] = {a: float(np.mean(v)) if v else 0.0
                    for a, v in per_algo.items()}
        counts[J] = len(results)
    return Table2Data(algorithms, means, counts)


def format_table2(data: Table2Data) -> str:
    js = sorted(data.mean_seconds)
    headers = ["Algorithm"] + [f"{j} tasks" for j in js]
    rows = []
    for a in data.algorithms:
        rows.append([a] + [f"{data.mean_seconds[j][a]:.3f}" for j in js])
    return format_table(
        headers, rows,
        title="Mean run time in seconds, averaged over all instances")
