"""Terminal rendering of figure series.

The paper's figures are gnuplot scatter/line plots; the CLI renders the
same series as compact ASCII charts so results can be eyeballed without
leaving the terminal (CSV output remains the machine-readable artifact).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["line_chart", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"

# A data range narrower than this renders as flat: widen it to a unit span
# so every point lands on one row/column instead of dividing by ~0.
_FLAT_RANGE = 1e-12


def sparkline(values: Sequence[float], lo: float | None = None,
              hi: float | None = None) -> str:
    """One-line bar rendering of a numeric series."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo = min(vals) if lo is None else lo
    hi = max(vals) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _BLOCKS[0] * len(vals)
    out = []
    for v in vals:
        t = (v - lo) / span
        out.append(_BLOCKS[min(len(_BLOCKS) - 1, int(t * len(_BLOCKS)))])
    return "".join(out)


def line_chart(series: Mapping[str, Mapping[float, float]],
               width: int = 60, height: int = 16,
               x_label: str = "x", y_label: str = "y",
               title: str = "") -> str:
    """Multi-series ASCII chart.

    Each series is a mapping ``x -> y``; x positions are merged across
    series and mapped onto ``width`` columns, y values onto ``height``
    rows.  Series are drawn with distinct glyphs, listed in the legend.
    """
    glyphs = "ox+*#@%&"
    names = list(series)
    if not names:
        return "(no data)"
    xs = sorted({x for curve in series.values() for x in curve})
    ys = [y for curve in series.values() for y in curve.values()]
    if not xs or not ys:
        return "(no data)"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi - y_lo < _FLAT_RANGE:
        y_hi = y_lo + 1.0
    if x_hi - x_lo < _FLAT_RANGE:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, name in enumerate(names):
        glyph = glyphs[s_idx % len(glyphs)]
        for x, y in series[name].items():
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            row = height - 1 - row
            current = grid[row][col]
            # Overlapping points from different series render as '?'.
            grid[row][col] = glyph if current in (" ", glyph) else "?"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:8.3f} ┐")
    for row in grid:
        lines.append(" " * 9 + "│" + "".join(row))
    lines.append(f"{y_lo:8.3f} ┴" + "─" * width)
    lines.append(" " * 10 + f"{x_lo:<10.3f}{x_label:^{max(0, width - 20)}}"
                 f"{x_hi:>10.3f}")
    legend = "   ".join(f"{glyphs[i % len(glyphs)]} {name}"
                        for i, name in enumerate(names))
    lines.append(f"legend: {legend}   (overlap: ?)")
    return "\n".join(lines)
