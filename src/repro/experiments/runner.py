"""Parallel experiment runner.

Workers receive *picklable task descriptors* — a :class:`ScenarioConfig`
plus algorithm names — regenerate their instance locally from the derived
seed, run the algorithms, and return plain floats.  No arrays or
generators cross process boundaries (the scatter/gather discipline of the
HPC guides).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from ..algorithms import (
    metagreedy,
    metahvp,
    metahvp_light,
    metavp,
    milp_exact,
    random_placement,
    rrnd,
    rrnz,
)
from ..algorithms.base import NamedAlgorithm
from ..util.parallel import parallel_map
from ..util.rng import derive_seed
from ..util.timing import timed_call
from ..workloads import ScenarioConfig, generate_instance

__all__ = ["ALGORITHM_FACTORIES", "AlgorithmResult", "TaskResult", "run_grid",
           "make_algorithms"]

#: Paper-name → zero-argument factory.  Factories (not instances) keep the
#: task descriptors picklable and let every worker build fresh closures.
ALGORITHM_FACTORIES: dict[str, Callable[[], NamedAlgorithm]] = {
    "RRND": rrnd,
    "RRNZ": rrnz,
    "METAGREEDY": metagreedy,
    "METAVP": metavp,
    "METAHVP": metahvp,
    "METAHVPLIGHT": metahvp_light,
    # Extra baselines beyond the paper's Table 1 (see their modules):
    "RANDOM": random_placement,
    "MILP": milp_exact,
}


def make_algorithms(names: Sequence[str]) -> list[NamedAlgorithm]:
    unknown = [n for n in names if n not in ALGORITHM_FACTORIES]
    if unknown:
        raise KeyError(f"unknown algorithm(s): {unknown}; "
                       f"choose from {sorted(ALGORITHM_FACTORIES)}")
    return [ALGORITHM_FACTORIES[n]() for n in names]


@dataclass(frozen=True)
class AlgorithmResult:
    """One algorithm's outcome on one instance."""

    algorithm: str
    min_yield: Optional[float]
    seconds: float

    @property
    def succeeded(self) -> bool:
        return self.min_yield is not None


@dataclass(frozen=True)
class TaskResult:
    """All requested algorithms' outcomes on one instance."""

    config: ScenarioConfig
    results: tuple[AlgorithmResult, ...]

    def by_algorithm(self) -> dict[str, AlgorithmResult]:
        return {r.algorithm: r for r in self.results}


@dataclass(frozen=True)
class _Task:
    config: ScenarioConfig
    algorithms: tuple[str, ...]


def _run_task(task: _Task) -> TaskResult:
    instance = generate_instance(task.config)
    out = []
    for name in task.algorithms:
        algo = ALGORITHM_FACTORIES[name]()
        # Stochastic algorithms get a stream derived from the instance
        # coordinates plus the algorithm name, so adding/removing
        # algorithms never perturbs the others' draws.
        rng = np.random.default_rng(
            derive_seed(task.config.seed,
                        task.config.instance_index,
                        _algo_stream_id(name)))
        alloc, seconds = timed_call(algo, instance, rng=rng)
        min_yield = None if alloc is None else alloc.minimum_yield()
        out.append(AlgorithmResult(name, min_yield, seconds))
    return TaskResult(task.config, tuple(out))


def _algo_stream_id(name: str) -> int:
    # Stable small integer per algorithm name (alphabetical registry rank).
    return sorted(ALGORITHM_FACTORIES).index(name)


def run_grid(configs: Iterable[ScenarioConfig],
             algorithms: Sequence[str],
             workers: int | None = None) -> list[TaskResult]:
    """Run *algorithms* on every config; order of results matches input."""
    algorithms = tuple(algorithms)
    make_algorithms(algorithms)  # validate names up front
    tasks = [_Task(cfg, algorithms) for cfg in configs]
    return parallel_map(_run_task, tasks, workers=workers)
