"""Parallel experiment runner.

Workers receive *picklable task descriptors* — a :class:`ScenarioConfig`
plus algorithm names — regenerate their instance locally from the derived
seed, run the algorithms, and return plain floats.  No arrays or
generators cross process boundaries (the scatter/gather discipline of the
HPC guides).

:func:`iter_grid` is the streaming engine: it submits tasks to the pool in
a bounded window (constant memory for million-task grids), optionally
appends every completed :class:`TaskResult` to a JSONL checkpoint, and on
``resume=True`` answers already-completed coordinates from the checkpoint
instead of recomputing — yielding results in input order either way, so a
resumed sweep is identical to an uninterrupted one.  :func:`run_grid` is
the materializing wrapper kept for existing callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from ..algorithms import (
    metagreedy,
    metahvp,
    metahvp_light,
    metavp,
    milp_exact,
    random_placement,
    rrnd,
    rrnz,
)
from ..algorithms.base import NamedAlgorithm
from ..util.parallel import parallel_imap_cached
from ..util.rng import derive_seed
from ..util.timing import timed_call
from ..workloads import ScenarioConfig, generate_instance

__all__ = ["ALGORITHM_FACTORIES", "AlgorithmResult", "TaskResult",
           "iter_grid", "run_grid", "make_algorithms"]

#: Callback invoked per yielded result: ``progress(result, cached)`` where
#: *cached* is True when the result came from the checkpoint.
ProgressCallback = Callable[["TaskResult", bool], None]

#: Paper-name → zero-argument factory.  Factories (not instances) keep the
#: task descriptors picklable and let every worker build fresh closures.
ALGORITHM_FACTORIES: dict[str, Callable[[], NamedAlgorithm]] = {
    "RRND": rrnd,
    "RRNZ": rrnz,
    "METAGREEDY": metagreedy,
    "METAVP": metavp,
    "METAHVP": metahvp,
    "METAHVPLIGHT": metahvp_light,
    # Extra baselines beyond the paper's Table 1 (see their modules):
    "RANDOM": random_placement,
    "MILP": milp_exact,
}

#: Alphabetical registry rank per algorithm, fixed at import time.  These
#: feed :func:`derive_seed`, so the table must never depend on registry
#: mutation order — and computing it once here (instead of re-sorting the
#: registry for every algorithm of every task) keeps the per-task setup
#: cost flat.
_ALGO_STREAM_IDS: dict[str, int] = {
    name: rank for rank, name in enumerate(sorted(ALGORITHM_FACTORIES))
}


def make_algorithms(names: Sequence[str]) -> list[NamedAlgorithm]:
    unknown = [n for n in names if n not in ALGORITHM_FACTORIES]
    if unknown:
        raise KeyError(f"unknown algorithm(s): {unknown}; "
                       f"choose from {sorted(ALGORITHM_FACTORIES)}")
    return [ALGORITHM_FACTORIES[n]() for n in names]


@dataclass(frozen=True)
class AlgorithmResult:
    """One algorithm's outcome on one instance."""

    algorithm: str
    min_yield: Optional[float]
    seconds: float

    @property
    def succeeded(self) -> bool:
        return self.min_yield is not None


@dataclass(frozen=True)
class TaskResult:
    """All requested algorithms' outcomes on one instance."""

    config: ScenarioConfig
    results: tuple[AlgorithmResult, ...]

    def by_algorithm(self) -> dict[str, AlgorithmResult]:
        return {r.algorithm: r for r in self.results}


@dataclass(frozen=True)
class _Task:
    config: ScenarioConfig
    algorithms: tuple[str, ...]
    #: Seed each warm-capable solve with the best yield an earlier
    #: algorithm certified on the same instance.  Off for timing tables,
    #: which must measure standalone solves.
    warm_chain: bool = True


def _run_task(task: _Task) -> TaskResult:
    instance = generate_instance(task.config)
    out = []
    hint: float | None = None
    for name in task.algorithms:
        algo = ALGORITHM_FACTORIES[name]()
        fn = getattr(algo, "fn", algo)
        if task.warm_chain and getattr(fn, "supports_hint", False):
            # All algorithms in a task solve the *same* instance, so the
            # best yield an earlier one certified is a strong seed for
            # this one's binary search.  The chain stays inside the
            # task, so results are independent of worker scheduling and
            # checkpoint resume.  Warm and cold searches certify equal
            # yields; the winning *strategy* at the final probe can
            # differ, so placement-derived values may shift within the
            # usual engine-equivalence envelope (same caveat as the v2
            # engine's adaptive ordering).
            stats: dict = {}
            alloc, seconds = timed_call(
                fn.solve_with_hint, instance, hint=hint, stats=stats)
            certified = stats.get("certified")
            if certified is not None and (hint is None
                                          or certified > hint):
                hint = certified
        else:
            # Stochastic algorithms get a stream derived from the
            # instance coordinates plus the algorithm name, so
            # adding/removing algorithms never perturbs the others'
            # draws.
            rng = np.random.default_rng(
                derive_seed(task.config.seed,
                            task.config.instance_index,
                            _algo_stream_id(name)))
            alloc, seconds = timed_call(algo, instance, rng=rng)
        min_yield = None if alloc is None else alloc.minimum_yield()
        if (not getattr(fn, "supports_hint", False)
                and min_yield is not None
                and (hint is None or min_yield > hint)):
            # Non-searching algorithms only offer their (post-improve)
            # allocation yield; still a usable advisory seed.
            hint = min_yield
        out.append(AlgorithmResult(name, min_yield, seconds))
    return TaskResult(task.config, tuple(out))


def _algo_stream_id(name: str) -> int:
    # Stable small integer per algorithm name (alphabetical registry rank).
    return _ALGO_STREAM_IDS[name]


def _run_task_batch(tasks: Sequence[_Task]) -> list[TaskResult]:
    """Run a block of tasks, batching warm solves through ``solve_many``.

    Produces exactly the results of ``[_run_task(t) for t in tasks]``:
    instances are generated per task, hint chains stay *within* each
    task (per instance, across the algorithm list), and stochastic
    algorithms draw from the same coordinate-derived streams.  Only the
    dispatch changes — for each hint-capable algorithm the whole block
    of instances goes through one :meth:`solve_many` call, so the kernel
    layer sees batches instead of singletons.
    """
    tasks = list(tasks)
    if len(tasks) == 1:
        return [_run_task(tasks[0])]
    shared = tasks[0]
    if any(t.algorithms != shared.algorithms
           or t.warm_chain != shared.warm_chain for t in tasks):
        # Mixed blocks can't share a solve_many call; grids never
        # produce them, but stay correct if a caller does.
        return [_run_task(t) for t in tasks]
    instances = [generate_instance(t.config) for t in tasks]
    B = len(tasks)
    rows: list[list[AlgorithmResult]] = [[] for _ in range(B)]
    hints: list[float | None] = [None] * B
    for name in shared.algorithms:
        algo = ALGORITHM_FACTORIES[name]()
        fn = getattr(algo, "fn", algo)
        supports = getattr(fn, "supports_hint", False)
        if supports and hasattr(fn, "solve_many"):
            # Batched even when the warm chain is off — hints simply
            # stay None, matching the cold per-instance calls.
            stats_list: list[dict] = [{} for _ in range(B)]
            allocs = fn.solve_many(
                instances,
                hints=list(hints) if shared.warm_chain else None,
                stats=stats_list)
            for i in range(B):
                stats = stats_list[i]
                certified = stats.get("certified")
                if shared.warm_chain and certified is not None \
                        and (hints[i] is None or certified > hints[i]):
                    hints[i] = certified
                alloc = allocs[i]
                min_yield = None if alloc is None else alloc.minimum_yield()
                rows[i].append(AlgorithmResult(
                    name, min_yield, stats["seconds"]))
        elif shared.warm_chain and supports:
            for i in range(B):
                stats = {}
                alloc, seconds = timed_call(
                    fn.solve_with_hint, instances[i], hint=hints[i],
                    stats=stats)
                certified = stats.get("certified")
                if certified is not None and (hints[i] is None
                                              or certified > hints[i]):
                    hints[i] = certified
                min_yield = None if alloc is None else alloc.minimum_yield()
                rows[i].append(AlgorithmResult(name, min_yield, seconds))
        else:
            for i, task in enumerate(tasks):
                rng = np.random.default_rng(
                    derive_seed(task.config.seed,
                                task.config.instance_index,
                                _algo_stream_id(name)))
                alloc, seconds = timed_call(algo, instances[i], rng=rng)
                min_yield = None if alloc is None else alloc.minimum_yield()
                if (not supports and min_yield is not None
                        and (hints[i] is None or min_yield > hints[i])):
                    hints[i] = min_yield
                rows[i].append(AlgorithmResult(name, min_yield, seconds))
    return [TaskResult(t.config, tuple(rows[i]))
            for i, t in enumerate(tasks)]


def iter_grid(configs: Iterable[ScenarioConfig],
              algorithms: Sequence[str],
              workers: int | None = None,
              *,
              window: int | None = None,
              checkpoint: Union[str, "ResultStore", None] = None,
              resume: bool = False,
              progress: Optional[ProgressCallback] = None,
              warm_chain: bool = True,
              batch: int = 1,
              ) -> Iterator[TaskResult]:
    """Stream :class:`TaskResult`s for *configs* in input order.

    *configs* may be an arbitrarily large lazy iterable; only ``window``
    tasks (default ``4 × workers``) are in flight at once.

    With ``batch > 1``, each worker dispatch covers up to *batch*
    consecutive tasks and warm META* solves go through the batched
    kernel entry point (one fused kernel call per probe instead of a
    Python strategy scan) — results, checkpoint rows, and resume
    behavior are identical to ``batch=1`` apart from wall-clock.

    With *checkpoint* (a JSONL path or an open
    :class:`~.persistence.ResultStore`), every completed result is
    appended — flushed and fsynced — before being yielded, so an
    interrupted run loses at most the tasks still in flight.  With
    ``resume=True`` the checkpoint is indexed first and tasks whose
    coordinates (scenario cell + algorithm tuple) are already present are
    yielded from it without recomputation; because instances are
    regenerated from their coordinates, the resumed stream is exactly the
    uninterrupted one.  A path with ``resume=False`` is truncated.

    *progress* is invoked as ``progress(result, cached)`` for every
    yielded result.
    """
    from .persistence import as_result_store, task_key  # deferred: circular

    algorithms = tuple(algorithms)
    make_algorithms(algorithms)  # validate names up front

    store = as_result_store(checkpoint, resume=resume)
    cache = store.completed if store is not None else {}
    on_computed = None if store is None else (
        lambda key, result: store.append(result))

    tasks = (_Task(cfg, algorithms, warm_chain) for cfg in configs)
    stream = parallel_imap_cached(
        _run_task, tasks, cache,
        key=lambda task: task_key(task.config, task.algorithms),
        workers=workers, window=window, on_computed=on_computed,
        progress=progress, chunk=batch,
        chunk_fn=_run_task_batch if batch > 1 else None)
    try:
        yield from stream
    finally:
        stream.close()
        if store is not None and store is not checkpoint:
            store.close()  # we opened it from a path, so we close it


def run_grid(configs: Iterable[ScenarioConfig],
             algorithms: Sequence[str],
             workers: int | None = None,
             *,
             window: int | None = None,
             checkpoint: Union[str, "ResultStore", None] = None,
             resume: bool = False,
             progress: Optional[ProgressCallback] = None,
             warm_chain: bool = True,
             batch: int = 1) -> list[TaskResult]:
    """Run *algorithms* on every config; order of results matches input.

    Materializing wrapper around :func:`iter_grid`; the keyword-only
    checkpoint/resume/progress options are forwarded unchanged.
    """
    return list(iter_grid(configs, algorithms, workers, window=window,
                          checkpoint=checkpoint, resume=resume,
                          progress=progress, warm_chain=warm_chain,
                          batch=batch))
