"""Declarative experiment specifications and machine-level sharding.

Every experiment in this repository — the Table 1/2 sweeps, the CoV and
error figure families, the §5.1 strategy ranking — is one *scenario space*
evaluated a particular way.  An :class:`ExperimentSpec` captures that
shape declaratively: a deterministic, stably-ordered **task list** (each
task carrying a JSON-able coordinate key), a **worker** that computes one
task, a **reducer** that folds the completed stream into the experiment's
data object, and a **formatter** that renders it.  The drivers in
``table1.py``, ``table2.py``, ``figures_cov.py``, ``figures_error.py``
and ``strategy_ranking.py`` are now thin builders of these specs;
enumeration, checkpointing, resume and warm-start hint chaining live once
in :func:`~.runner.iter_grid` and :func:`~..util.parallel.
parallel_imap_cached`.

Two concrete spec families cover every driver:

* :class:`GridExperiment` — tasks are :class:`~..workloads.
  ScenarioConfig` cells solved by a fixed algorithm set; results are
  :class:`~.runner.TaskResult` rows persisted by :class:`~.persistence.
  ResultStore`.
* :class:`CheckpointExperiment` — tasks are arbitrary picklable
  descriptors (error-figure instances, strategy indices) whose payloads
  are persisted by :class:`~.persistence.JsonlCheckpoint` under a spec
  fingerprint.

**Sharding.**  Because a spec's task order is deterministic and every
task key is canonical JSON, any experiment can be partitioned across
machines: :class:`Shard` assigns each task to ``sha1(key) mod n``, each
shard streams its share into its own JSONL checkpoint
(``repro shard --index i --of n ...``), and :meth:`ExperimentSpec.collect`
rebuilds the *exact* unsharded reduction from the merged shard files
(``repro merge``) — tasks are self-contained (hint chains never cross
task boundaries), so the merged table or figure is byte-identical to an
unsharded run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

from .persistence import (
    JsonlCheckpoint,
    as_jsonl_checkpoint,
    fingerprinted_cache,
    load_results,
    task_key,
)
from .runner import ProgressCallback, TaskResult, iter_grid

__all__ = [
    "CheckpointExperiment",
    "ExperimentSpec",
    "GridExperiment",
    "IncompleteResultsError",
    "Shard",
    "shard_index",
]


def shard_index(key: object, of: int) -> int:
    """Deterministic shard owner of a task *key*, identical on every
    machine and Python version (canonical JSON + SHA-1, never ``hash()``,
    which is salted per process)."""
    canon = json.dumps(key, sort_keys=True)
    digest = hashlib.sha1(canon.encode()).digest()
    return int.from_bytes(digest[:8], "big") % of


@dataclass(frozen=True)
class Shard:
    """One slice (``index`` of ``of``) of an experiment's task list.

    Every task belongs to exactly one shard, so the union of all ``of``
    shards is an exact partition — the property the shard/merge tests
    assert for every spec.
    """

    index: int
    of: int

    def __post_init__(self) -> None:
        if self.of < 1:
            raise ValueError(f"shard count must be >= 1, got {self.of}")
        if not 0 <= self.index < self.of:
            raise ValueError(
                f"shard index must lie in [0, {self.of}), got {self.index}")

    def owns(self, key: object) -> bool:
        return shard_index(key, self.of) == self.index


class IncompleteResultsError(RuntimeError):
    """``collect`` found shard checkpoints missing some of the spec's
    tasks — a shard is absent, unfinished, or was run for different
    coordinates (other grid, other workload model)."""

    def __init__(self, name: str, missing: int, total: int, example: object):
        super().__init__(
            f"{name}: shard checkpoints cover {total - missing} of {total} "
            f"tasks; first missing key: {json.dumps(example)}.  Run the "
            f"missing shard(s) to completion, or check that every shard "
            f"used the same grid/workload arguments.")
        self.missing = missing
        self.total = total


class ExperimentSpec:
    """Interface shared by :class:`GridExperiment` and
    :class:`CheckpointExperiment` (see module docstring)."""

    name: str

    def task_keys(self) -> Iterator[object]:
        """The spec's task coordinates, in its canonical order."""
        raise NotImplementedError

    def task_count(self) -> int:
        return sum(1 for _ in self.task_keys())

    def run(self, workers: int | None = None, *,
            checkpoint=None, resume: bool = False,
            window: int | None = None,
            progress: Optional[ProgressCallback] = None,
            batch: int = 1):
        """Run every task and reduce the stream into the data object.

        *batch* groups tasks into kernel batches per worker dispatch
        where the spec supports it (grid experiments); results are
        identical to ``batch=1``.
        """
        raise NotImplementedError

    def run_shard(self, shard: Shard, workers: int | None = None, *,
                  checkpoint=None, resume: bool = False,
                  window: int | None = None,
                  progress: Optional[ProgressCallback] = None,
                  batch: int = 1) -> int:
        """Run only *shard*'s tasks (checkpointing them); returns the
        number of tasks completed, resumed entries included."""
        raise NotImplementedError

    def collect(self, sources: Sequence[str]):
        """Reduce the full experiment from checkpoint files alone.

        *sources* are shard (or merged) JSONL paths.  Every task in the
        spec's list must be present; raises
        :class:`IncompleteResultsError` otherwise.  Because the reducer
        sees results in the spec's canonical order, the returned data —
        and its rendering — is identical to an unsharded :meth:`run`.
        """
        raise NotImplementedError

    def render(self, data) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class GridExperiment(ExperimentSpec):
    """Spec over a scenario grid solved by a fixed algorithm set.

    ``configs`` is a zero-argument callable yielding the grid's
    :class:`ScenarioConfig` cells in canonical order (lazy, so paper-scale
    grids never materialize).  ``reduce`` folds an in-order stream of
    :class:`TaskResult` into the experiment's data object; it receives the
    spec itself for access to the algorithm set.
    """

    name: str
    configs: Callable[[], Iterable]
    algorithms: tuple[str, ...]
    reduce: Callable[["GridExperiment", Iterator[TaskResult]], object]
    formatter: Callable[[object], str]
    warm_chain: bool = True

    def iter_configs(self) -> Iterator:
        return iter(self.configs())

    def task_keys(self) -> Iterator[object]:
        for cfg in self.iter_configs():
            yield task_key(cfg, self.algorithms)

    def _stream(self, configs: Iterable, workers, checkpoint, resume,
                window, progress, batch: int = 1) -> Iterator[TaskResult]:
        return iter_grid(configs, self.algorithms, workers, window=window,
                         checkpoint=checkpoint, resume=resume,
                         progress=progress, warm_chain=self.warm_chain,
                         batch=batch)

    def run(self, workers: int | None = None, *,
            checkpoint=None, resume: bool = False,
            window: int | None = None,
            progress: Optional[ProgressCallback] = None,
            batch: int = 1):
        stream = self._stream(self.iter_configs(), workers, checkpoint,
                              resume, window, progress, batch)
        return self.reduce(self, stream)

    def run_shard(self, shard: Shard, workers: int | None = None, *,
                  checkpoint=None, resume: bool = False,
                  window: int | None = None,
                  progress: Optional[ProgressCallback] = None,
                  batch: int = 1) -> int:
        configs = (cfg for cfg in self.iter_configs()
                   if shard.owns(task_key(cfg, self.algorithms)))
        stream = self._stream(configs, workers, checkpoint, resume,
                              window, progress, batch)
        return sum(1 for _ in stream)

    def collect(self, sources: Sequence[str]):
        completed: dict[tuple, TaskResult] = {}
        for path in sources:
            for task in load_results(path):
                algos = tuple(r.algorithm for r in task.results)
                completed.setdefault(task_key(task.config, algos), task)

        def ordered() -> Iterator[TaskResult]:
            missing = 0
            total = 0
            example = None
            for cfg in self.iter_configs():
                total += 1
                key = task_key(cfg, self.algorithms)
                task = completed.get(key)
                if task is None:
                    missing += 1
                    example = example or key
                    continue
                yield task
            if missing:
                raise IncompleteResultsError(self.name, missing, total,
                                             example)

        return self.reduce(self, ordered())

    def render(self, data) -> str:
        return self.formatter(data)


@dataclass(frozen=True)
class CheckpointExperiment(ExperimentSpec):
    """Spec whose tasks persist as fingerprinted key→payload records.

    ``tasks`` are picklable descriptors in canonical order; ``index_of``
    maps a descriptor to its position (the second element of its
    ``[fingerprint, index]`` checkpoint key).  ``worker`` computes one
    task's payload object; ``encode``/``decode`` convert payloads to/from
    their JSON form; ``reduce`` folds the full in-order payload list into
    the data object.  The fingerprint covers everything that shapes a
    payload — scenario coordinates, workload model, engine flags — so
    foreign checkpoints can never alias.
    """

    name: str
    kind: str
    fingerprint: str
    tasks: tuple
    worker: Callable
    index_of: Callable[[object], int]
    encode: Callable[[object], object]
    decode: Callable[[int, object], object]
    reduce: Callable[["CheckpointExperiment", Sequence], object]
    formatter: Callable[[object], str]

    def task_keys(self) -> Iterator[object]:
        for task in self.tasks:
            yield [self.fingerprint, self.index_of(task)]

    def task_count(self) -> int:
        return len(self.tasks)

    def _key(self, task) -> str:
        return json.dumps([self.fingerprint, self.index_of(task)],
                          sort_keys=True)

    def _payloads(self, tasks: Sequence, workers, checkpoint, resume,
                  window, progress) -> Iterator:
        """Stream payload objects for *tasks* in order, checkpointing."""
        from ..util.parallel import parallel_imap_cached

        ckpt = as_jsonl_checkpoint(checkpoint, kind=self.kind, resume=resume)
        cache = fingerprinted_cache(
            ckpt, self.fingerprint,
            lambda key, payload: self.decode(key[1], payload))

        def on_computed(key: str, value) -> None:
            ckpt.append(json.loads(key), self.encode(value))

        stream = parallel_imap_cached(
            self.worker, tasks, cache, key=self._key,
            workers=workers, window=window,
            on_computed=None if ckpt is None else on_computed,
            progress=progress)
        try:
            yield from stream
        finally:
            stream.close()
            if ckpt is not None and ckpt is not checkpoint:
                ckpt.close()

    def run(self, workers: int | None = None, *,
            checkpoint=None, resume: bool = False,
            window: int | None = None,
            progress: Optional[ProgressCallback] = None,
            batch: int = 1):
        # *batch* accepted for interface parity; checkpoint-experiment
        # workers are arbitrary callables, so there is nothing to fuse.
        payloads = list(self._payloads(self.tasks, workers, checkpoint,
                                       resume, window, progress))
        return self.reduce(self, payloads)

    def run_shard(self, shard: Shard, workers: int | None = None, *,
                  checkpoint=None, resume: bool = False,
                  window: int | None = None,
                  progress: Optional[ProgressCallback] = None,
                  batch: int = 1) -> int:
        mine = [t for t in self.tasks
                if shard.owns([self.fingerprint, self.index_of(t)])]
        return sum(1 for _ in self._payloads(mine, workers, checkpoint,
                                             resume, window, progress))

    def collect(self, sources: Sequence[str]):
        found: dict[int, object] = {}
        for path in sources:
            ckpt = JsonlCheckpoint(path, kind=self.kind, resume=True)
            for canon, payload in ckpt.completed.items():
                key = json.loads(canon)
                if key[0] == self.fingerprint and key[1] not in found:
                    found[key[1]] = self.decode(key[1], payload)
        indices = [self.index_of(t) for t in self.tasks]
        missing = [i for i in indices if i not in found]
        if missing:
            raise IncompleteResultsError(
                self.name, len(missing), len(indices),
                [self.fingerprint, missing[0]])
        return self.reduce(self, [found[i] for i in indices])

    def render(self, data) -> str:
        return self.formatter(data)
