"""Table 1: pairwise algorithm comparisons ``(Y_{A,B}, S_{A,B})`` (§5).

For each service count, every ordered algorithm pair is compared on the
full (CoV × slack × instance) grid: the average percent minimum-yield gain
on commonly-solved instances, and the success-rate difference in
percentage points.  The paper's Table 1 covers RRND, RRNZ, METAGREEDY,
METAVP and METAHVP; §5.1's METAHVP-vs-METAHVPLIGHT numbers come from the
same machinery with ``--include-light``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .config import GridSpec
from .metrics import (
    PairwiseComparison,
    average_yield,
    pairwise_comparison,
    success_rate,
)
from .persistence import as_result_store
from .report import format_matrix, format_table
from .runner import ProgressCallback, iter_grid

__all__ = ["Table1Data", "run_table1", "format_table1",
           "DEFAULT_TABLE1_ALGORITHMS"]

DEFAULT_TABLE1_ALGORITHMS = ("RRND", "RRNZ", "METAGREEDY", "METAVP",
                             "METAHVP")


@dataclass(frozen=True)
class Table1Data:
    """Pairwise matrices and per-algorithm summaries, per service count."""

    algorithms: tuple[str, ...]
    matrices: Mapping[int, Mapping[tuple[str, str], PairwiseComparison]]
    success_rates: Mapping[int, Mapping[str, float]]
    average_yields: Mapping[int, Mapping[str, float]]
    instance_counts: Mapping[int, int]


def run_table1(grid: GridSpec,
               algorithms: Sequence[str] = DEFAULT_TABLE1_ALGORITHMS,
               workers: int | None = None,
               *,
               checkpoint=None,
               resume: bool = False,
               window: int | None = None,
               progress: ProgressCallback | None = None) -> Table1Data:
    """Run the grid and assemble the Table-1 matrices.

    Results stream in (only the per-algorithm yield columns are retained,
    not the TaskResults) and, with *checkpoint*, are appended to a JSONL
    file as they complete; ``resume=True`` skips coordinates already in it.
    """
    algorithms = tuple(algorithms)
    matrices: dict[int, dict[tuple[str, str], PairwiseComparison]] = {}
    rates: dict[int, dict[str, float]] = {}
    avgs: dict[int, dict[str, float]] = {}
    counts: dict[int, int] = {}
    store = as_result_store(checkpoint, resume=resume)
    try:
        for J in grid.services:
            yields: dict[str, list[float | None]] = {a: [] for a in algorithms}
            count = 0
            for task in iter_grid(grid.configs(services=J), algorithms,
                                  workers, window=window, checkpoint=store,
                                  progress=progress):
                count += 1
                by_algo = task.by_algorithm()
                for a in algorithms:
                    yields[a].append(by_algo[a].min_yield)
            counts[J] = count
            rates[J] = {a: success_rate(yields[a]) for a in algorithms}
            avgs[J] = {a: average_yield(yields[a]) for a in algorithms}
            matrices[J] = {
                (a, b): pairwise_comparison(yields[a], yields[b])
                for a in algorithms for b in algorithms if a != b
            }
    finally:
        if store is not None and store is not checkpoint:
            store.close()
    return Table1Data(algorithms, matrices, rates, avgs, counts)


def format_table1(data: Table1Data) -> str:
    """Render the paper-style matrices plus a summary block."""
    sections = []
    for J, matrix in sorted(data.matrices.items()):
        cells = {
            (a, b): f"({cmp.yield_gain_pct:+.1f}%, {cmp.success_gain_pct:+.1f}%)"
            for (a, b), cmp in matrix.items()
        }
        sections.append(format_matrix(
            data.algorithms, data.algorithms, cells,
            title=f"{J} services — (Y_A,B %, S_A,B pp) over "
                  f"{data.instance_counts[J]} instances"))
        summary_rows = [
            (a,
             f"{data.success_rates[J][a] * 100:.1f}%",
             f"{data.average_yields[J][a]:.3f}")
            for a in data.algorithms
        ]
        sections.append(format_table(
            ("algorithm", "success", "avg min yield"), summary_rows))
    return "\n\n".join(sections)
