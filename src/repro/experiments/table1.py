"""Table 1: pairwise algorithm comparisons ``(Y_{A,B}, S_{A,B})`` (§5).

For each service count, every ordered algorithm pair is compared on the
full (CoV × slack × instance) grid: the average percent minimum-yield gain
on commonly-solved instances, and the success-rate difference in
percentage points.  The paper's Table 1 covers RRND, RRNZ, METAGREEDY,
METAVP and METAHVP; §5.1's METAHVP-vs-METAHVPLIGHT numbers come from the
same machinery with ``--include-light``.

The experiment is declared as a :class:`~.spec.GridExperiment`
(:func:`table1_experiment`): the grid's configs are the task list, the
reducer streams yields per service count, and :func:`format_table1`
renders the matrices.  :func:`run_table1` is the materializing wrapper
kept for existing callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from .config import GridSpec
from .metrics import (
    PairwiseComparison,
    average_yield,
    pairwise_comparison,
    success_rate,
)
from .report import format_matrix, format_table
from .runner import ProgressCallback, TaskResult
from .spec import GridExperiment

__all__ = ["Table1Data", "run_table1", "format_table1", "table1_experiment",
           "DEFAULT_TABLE1_ALGORITHMS"]

DEFAULT_TABLE1_ALGORITHMS = ("RRND", "RRNZ", "METAGREEDY", "METAVP",
                             "METAHVP")


@dataclass(frozen=True)
class Table1Data:
    """Pairwise matrices and per-algorithm summaries, per service count."""

    algorithms: tuple[str, ...]
    matrices: Mapping[int, Mapping[tuple[str, str], PairwiseComparison]]
    success_rates: Mapping[int, Mapping[str, float]]
    average_yields: Mapping[int, Mapping[str, float]]
    instance_counts: Mapping[int, int]


def _reduce_table1(spec: GridExperiment,
                   stream: Iterator[TaskResult]) -> Table1Data:
    """Fold the in-order result stream into the Table-1 matrices.

    Only per-algorithm yield columns are retained (grouped by service
    count as they arrive), not the TaskResults themselves.
    """
    algorithms = spec.algorithms
    yields_by_j: dict[int, dict[str, list[float | None]]] = {}
    counts: dict[int, int] = {}
    for task in stream:
        J = task.config.services
        yields = yields_by_j.setdefault(
            J, {a: [] for a in algorithms})
        counts[J] = counts.get(J, 0) + 1
        by_algo = task.by_algorithm()
        for a in algorithms:
            yields[a].append(by_algo[a].min_yield)
    rates = {J: {a: success_rate(y[a]) for a in algorithms}
             for J, y in yields_by_j.items()}
    avgs = {J: {a: average_yield(y[a]) for a in algorithms}
            for J, y in yields_by_j.items()}
    matrices = {
        J: {(a, b): pairwise_comparison(y[a], y[b])
            for a in algorithms for b in algorithms if a != b}
        for J, y in yields_by_j.items()
    }
    return Table1Data(algorithms, matrices, rates, avgs, counts)


def table1_experiment(grid: GridSpec,
                      algorithms: Sequence[str] = DEFAULT_TABLE1_ALGORITHMS
                      ) -> GridExperiment:
    """Declare Table 1 over *grid* as a shardable experiment spec."""
    return GridExperiment(
        name="table1",
        configs=grid.configs,
        algorithms=tuple(algorithms),
        reduce=_reduce_table1,
        formatter=format_table1,
    )


def run_table1(grid: GridSpec,
               algorithms: Sequence[str] = DEFAULT_TABLE1_ALGORITHMS,
               workers: int | None = None,
               *,
               checkpoint=None,
               resume: bool = False,
               window: int | None = None,
               progress: ProgressCallback | None = None) -> Table1Data:
    """Run the grid and assemble the Table-1 matrices.

    Results stream in and, with *checkpoint*, are appended to a JSONL
    file as they complete; ``resume=True`` skips coordinates already in it.
    """
    return table1_experiment(grid, algorithms).run(
        workers, checkpoint=checkpoint, resume=resume, window=window,
        progress=progress)


def format_table1(data: Table1Data) -> str:
    """Render the paper-style matrices plus a summary block."""
    sections = []
    for J, matrix in sorted(data.matrices.items()):
        cells = {
            (a, b): f"({cmp.yield_gain_pct:+.1f}%, {cmp.success_gain_pct:+.1f}%)"
            for (a, b), cmp in matrix.items()
        }
        sections.append(format_matrix(
            data.algorithms, data.algorithms, cells,
            title=f"{J} services — (Y_A,B %, S_A,B pp) over "
                  f"{data.instance_counts[J]} instances"))
        summary_rows = [
            (a,
             f"{data.success_rates[J][a] * 100:.1f}%",
             f"{data.average_yields[J][a]:.3f}")
            for a in data.algorithms
        ]
        sections.append(format_table(
            ("algorithm", "success", "avg min yield"), summary_rows))
    return "\n\n".join(sections)
