"""The error figure family: Figures 5-7 and 35-66 (§6.2).

Each figure fixes (hosts, services, slack, CoV) and sweeps the maximum
CPU-need estimation error.  Eight series are reported, each averaged over
the instances where placement succeeded:

* ``ideal`` — the placer with perfect knowledge (error-independent);
* ``zero-knowledge`` — even spreading + EQUALWEIGHTS, no estimates at all;
* ``weight, min=t`` / ``equal, min=t`` for thresholds t ∈ {0, 0.1, 0.3} —
  the placer runs on *perturbed* estimates rounded up to threshold ``t``,
  then the node CPU is shared by ALLOCWEIGHTS (resp. EQUALWEIGHTS) and
  actual yields are measured against the true needs.

The optional ``caps`` series (ALLOCCAPS) reproduces §6.2's observation
that hard caps collapse once the error reaches ≈30% of the mean need.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..algorithms.base import NamedAlgorithm
from ..sharing import (
    apply_minimum_threshold,
    evaluate_actual_yields,
    perturb_cpu_needs,
    zero_knowledge_placement,
)
from ..util.rng import derive_seed
from ..workloads import (
    DEFAULT_WORKLOAD,
    ScenarioConfig,
    generate_instance,
    parse_workload,
)
from .report import format_table, write_csv
from .runner import ALGORITHM_FACTORIES
from .spec import CheckpointExperiment

CHECKPOINT_KIND = "error-figure"

__all__ = ["ErrorFigureSpec", "ErrorFigureData", "run_error_figure",
           "format_error_figure", "error_figure_experiment"]

DEFAULT_ERRORS = tuple(round(0.02 * i, 6) for i in range(16))  # 0 .. 0.30
DEFAULT_THRESHOLDS = (0.0, 0.1, 0.3)


@dataclass(frozen=True)
class ErrorFigureSpec:
    """One error-impact figure (headline: Figures 5-7 use slack 0.4,
    CoV 0.5 with 100/250/500 services)."""

    hosts: int = 64
    services: int = 100
    slack: float = 0.4
    cov: float = 0.5
    error_values: tuple[float, ...] = DEFAULT_ERRORS
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS
    instances: int = 10
    placer: str = "METAHVP"
    include_caps: bool = False
    seed: int = 2012
    #: Workload-model id; part of the checkpoint fingerprint (via
    #: ``asdict``), so payloads computed under one model can never answer
    #: a resume under another.
    workload: str = DEFAULT_WORKLOAD

    def base_config(self, idx: int) -> ScenarioConfig:
        return ScenarioConfig(hosts=self.hosts, services=self.services,
                              cov=self.cov, slack=self.slack,
                              seed=self.seed, instance_index=idx,
                              model=parse_workload(self.workload))


@dataclass(frozen=True)
class ErrorFigureData:
    spec: ErrorFigureSpec
    # series name -> {error value: average min actual yield}; instances
    # where placement failed are excluded from the average.
    series: Mapping[str, Mapping[float, float]]
    solved_instances: int

    def to_csv(self, path: str) -> None:
        rows = []
        for name, curve in self.series.items():
            for err, val in sorted(curve.items()):
                rows.append((name, err, val))
        write_csv(path, ("series", "max_error", "avg_min_yield"), rows)


@dataclass(frozen=True)
class _InstanceTask:
    spec: ErrorFigureSpec
    index: int


def _min_actual_yield(instance_true, placement, policy,
                      estimated_instance) -> float:
    yields = evaluate_actual_yields(
        instance_true, placement, policy,
        estimated_instance=estimated_instance)
    return float(yields.min())


def _run_instance(task: _InstanceTask) -> Optional[dict[str, dict[float, float]]]:
    """All series values for one base instance, or None if the
    perfect-knowledge placement already fails (instance dropped)."""
    spec = task.spec
    placer: NamedAlgorithm = ALGORITHM_FACTORIES[spec.placer]()
    instance = generate_instance(spec.base_config(task.index))
    solver = getattr(placer, "fn", placer)
    if not getattr(solver, "supports_hint", False):
        solver = None

    ideal_alloc = placer(instance)
    if ideal_alloc is None:
        return None
    out: dict[str, dict[float, float]] = {}

    # Error-independent series (constant lines in the figures).
    ideal = ideal_alloc.minimum_yield()
    zk_placement = zero_knowledge_placement(instance)
    zk = (None if zk_placement is None else
          _min_actual_yield(instance, zk_placement, "EQUALWEIGHTS", None))
    for err in spec.error_values:
        out.setdefault("ideal", {})[err] = ideal
        if zk is not None:
            out.setdefault("zero-knowledge", {})[err] = zk

    # Every perturbed solve below re-packs the *same* platform with mildly
    # rescaled needs, so each search is seeded with the best yield seen so
    # far for this instance (warm ≡ cold results, ~2-4× fewer probes; the
    # chain is per-task, so checkpoint resume is unaffected).
    hint = ideal
    for e_idx, err in enumerate(spec.error_values):
        rng = np.random.default_rng(
            derive_seed(spec.seed, task.index, 1000 + e_idx))
        noisy = perturb_cpu_needs(instance.services, err, rng=rng)
        for threshold in spec.thresholds:
            estimates = apply_minimum_threshold(noisy, threshold)
            est_instance = instance.replace_services(estimates)
            if solver is not None:
                stats: dict = {}
                alloc = solver.solve_with_hint(est_instance, hint=hint,
                                               stats=stats)
                certified = stats.get("certified")
                if certified is not None and certified > hint:
                    hint = certified
            else:
                alloc = placer(est_instance)
            if alloc is None:
                continue
            placement = alloc.placement
            label = f"min={threshold:.2f}"
            out.setdefault(f"weight, {label}", {})[err] = _min_actual_yield(
                instance, placement, "ALLOCWEIGHTS", est_instance)
            out.setdefault(f"equal, {label}", {})[err] = _min_actual_yield(
                instance, placement, "EQUALWEIGHTS", est_instance)
            if spec.include_caps:
                out.setdefault(f"caps, {label}", {})[err] = _min_actual_yield(
                    instance, placement, "ALLOCCAPS", est_instance)
    return out


def _spec_fingerprint(spec: ErrorFigureSpec) -> str:
    """Identity of a figure's per-instance payloads in a shared checkpoint.

    ``instances`` is excluded: payloads are per-instance, so growing the
    instance count on resume reuses the ones already computed.
    """
    fields = dataclasses.asdict(spec)
    fields.pop("instances")
    blob = json.dumps(fields, sort_keys=True)
    return hashlib.sha1(blob.encode()).hexdigest()[:12]


def _encode_payload(out: Optional[dict[str, dict[float, float]]]):
    if out is None:
        return None  # dropped instance — recorded so resume skips it too
    return {"series": [[name, list(curve.items())]
                       for name, curve in out.items()]}


def _decode_payload(data) -> Optional[dict[str, dict[float, float]]]:
    if data is None:
        return None
    return {name: {float(err): val for err, val in pairs}
            for name, pairs in data["series"]}


def _reduce_error(spec: ErrorFigureSpec, payloads) -> ErrorFigureData:
    """Average each series point over the instances that produced it
    (``None`` payloads are dropped instances)."""
    per_instance = [p for p in payloads if p is not None]
    acc: dict[str, dict[float, list[float]]] = {}
    for result in per_instance:
        for name, curve in result.items():
            for err, val in curve.items():
                acc.setdefault(name, {}).setdefault(err, []).append(val)
    series = {
        name: {err: float(np.mean(vals)) for err, vals in sorted(curve.items())}
        for name, curve in acc.items()
    }
    return ErrorFigureData(spec, series, solved_instances=len(per_instance))


def error_figure_experiment(spec: ErrorFigureSpec) -> CheckpointExperiment:
    """Declare one error figure as a shardable experiment spec."""
    return CheckpointExperiment(
        name="fig-error",
        kind=CHECKPOINT_KIND,
        fingerprint=_spec_fingerprint(spec),
        tasks=tuple(_InstanceTask(spec, i) for i in range(spec.instances)),
        worker=_run_instance,
        index_of=lambda task: task.index,
        encode=_encode_payload,
        decode=lambda index, payload: _decode_payload(payload),
        reduce=lambda exp, payloads: _reduce_error(spec, payloads),
        formatter=format_error_figure,
    )


def run_error_figure(spec: ErrorFigureSpec,
                     workers: int | None = None,
                     *,
                     checkpoint=None,
                     resume: bool = False,
                     window: int | None = None,
                     progress=None) -> ErrorFigureData:
    return error_figure_experiment(spec).run(
        workers, checkpoint=checkpoint, resume=resume, window=window,
        progress=progress)


def format_error_figure(data: ErrorFigureData, chart: bool = True) -> str:
    spec = data.spec
    title = (f"Min actual yield vs max error — {spec.hosts} hosts, "
             f"{spec.services} services, slack {spec.slack}, "
             f"cov {spec.cov} ({data.solved_instances} instances)")
    names = sorted(data.series)
    errors = sorted({e for curve in data.series.values() for e in curve})
    headers = ["max_error"] + names
    rows = []
    for err in errors:
        row: list[object] = [f"{err:.2f}"]
        for name in names:
            v = data.series[name].get(err)
            row.append("-" if v is None else f"{v:.4f}")
        rows.append(row)
    text = format_table(headers, rows, title=title)
    if chart and data.series:
        from .ascii_plot import line_chart
        text += "\n\n" + line_chart(data.series, x_label="max error",
                                    title="(same data, charted)")
    return text
