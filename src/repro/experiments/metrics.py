"""Evaluation metrics (§5).

Algorithms differ both in how often they find *any* solution (success
rate) and in how good the found solutions are (minimum yield), so the
paper compares them pairwise:

* ``Y_{A,B}`` — average percent minimum-yield difference of A relative to
  B, over the instances where **both** succeed;
* ``S_{A,B}`` — percentage of instances where A succeeds and B fails,
  minus the percentage where B succeeds and A fails.

Positive values favor A.  Throughout the harness an algorithm's result on
an instance is its achieved minimum yield, or ``None`` on failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["PairwiseComparison", "pairwise_comparison", "success_rate",
           "average_yield"]

Result = Optional[float]


@dataclass(frozen=True)
class PairwiseComparison:
    """``(Y_{A,B}, S_{A,B})`` plus the underlying counts."""

    yield_gain_pct: float       # Y_{A,B}, in percent
    success_gain_pct: float     # S_{A,B}, in percentage points
    both_succeed: int
    only_a: int
    only_b: int
    total: int

    def as_pair(self) -> tuple[float, float]:
        return (self.yield_gain_pct, self.success_gain_pct)


def pairwise_comparison(results_a: Sequence[Result],
                        results_b: Sequence[Result]) -> PairwiseComparison:
    """Compute ``(Y_{A,B}, S_{A,B})`` from per-instance minimum yields."""
    if len(results_a) != len(results_b):
        raise ValueError("result vectors must cover the same instances")
    total = len(results_a)
    if total == 0:
        raise ValueError("no instances to compare")
    diffs = []
    only_a = only_b = both = 0
    for a, b in zip(results_a, results_b):
        if a is not None and b is not None:
            both += 1
            if b > 0:
                diffs.append((a - b) / b * 100.0)
            elif a > 0:
                # B found a zero-yield solution, A strictly better: count
                # as the maximum representable relative gain.
                diffs.append(np.inf)
            else:
                diffs.append(0.0)
        elif a is not None:
            only_a += 1
        elif b is not None:
            only_b += 1
    yield_gain = float(np.mean(diffs)) if diffs else 0.0
    success_gain = (only_a - only_b) / total * 100.0
    return PairwiseComparison(
        yield_gain_pct=yield_gain,
        success_gain_pct=success_gain,
        both_succeed=both,
        only_a=only_a,
        only_b=only_b,
        total=total,
    )


def success_rate(results: Sequence[Result]) -> float:
    """Fraction of instances solved, in [0, 1]."""
    if not results:
        raise ValueError("no results")
    return sum(r is not None for r in results) / len(results)


def average_yield(results: Sequence[Result]) -> float:
    """Mean minimum yield over the solved instances (0 if none solved)."""
    solved = [r for r in results if r is not None]
    return float(np.mean(solved)) if solved else 0.0
