"""Discrete-time simulation of a dynamically-managed hosting platform.

Implements the deployment scenario from the paper's conclusion: the
resource manager runs METAHVPLIGHT (or any registered placement
algorithm) on *estimated* CPU needs, optionally hardened with the §6
minimum-threshold mitigation, while services arrive and depart.  Between
full re-allocation epochs, new arrivals are slotted in with a cheap
best-fit so running services are not disturbed; at each epoch the whole
active set is re-packed and the services that moved count as migrations.

Every step, the runtime layer shares each node's CPU with a §6 policy
and the simulator records the yields actually achieved against the true
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..algorithms.base import NamedAlgorithm
from ..core.instance import ProblemInstance
from ..core.node import NodeArray
from ..core.service import ServiceArray
from ..sharing.adaptive import AdaptiveThreshold
from ..sharing.baseline import evaluate_actual_yields
from ..sharing.errors import apply_minimum_threshold, perturb_cpu_needs
from ..util.rng import as_generator
from .events import WorkloadTrace

__all__ = ["DynamicSimulator", "SimulationResult", "StepRecord"]

CPU = 0


@dataclass(frozen=True)
class StepRecord:
    """Metrics for one simulation step."""

    time: int
    active: int
    placed: int
    pending: int
    migrations: int
    min_yield: float
    mean_yield: float


@dataclass
class SimulationResult:
    steps: list[StepRecord] = field(default_factory=list)

    @property
    def total_migrations(self) -> int:
        return sum(s.migrations for s in self.steps)

    @property
    def average_min_yield(self) -> float:
        vals = [s.min_yield for s in self.steps if s.placed > 0]
        return float(np.mean(vals)) if vals else 0.0

    @property
    def average_pending(self) -> float:
        return float(np.mean([s.pending for s in self.steps]))

    def as_rows(self) -> list[tuple]:
        return [(s.time, s.active, s.placed, s.pending, s.migrations,
                 round(s.min_yield, 4), round(s.mean_yield, 4))
                for s in self.steps]


class DynamicSimulator:
    """Drives one trace over one platform.

    Parameters
    ----------
    nodes:
        The physical platform.
    trace:
        Workload events (see :mod:`repro.dynamic.events`).
    placer:
        Full re-allocation algorithm, used every ``reallocation_period``
        steps.
    policy:
        Runtime CPU-sharing policy name (``"ALLOCWEIGHTS"`` etc.).
    cpu_need_scale:
        Core-units → capacity-units conversion for the trace's CPU needs
        (the static experiments normalize against total capacity instead;
        a dynamic platform cannot, as its load varies).
    max_error / threshold:
        §6 estimation-error half-width and mitigation threshold applied to
        the CPU needs the placer sees.
    adaptive:
        Optional :class:`AdaptiveThreshold` controller; when given it
        overrides the static ``threshold``, re-thresholding the estimates
        at every re-allocation epoch and learning from the gap between the
        promised and realized minimum yield.
    """

    def __init__(self,
                 nodes: NodeArray,
                 trace: WorkloadTrace,
                 placer: NamedAlgorithm,
                 policy: str = "ALLOCWEIGHTS",
                 reallocation_period: int = 5,
                 cpu_need_scale: float = 0.08,
                 max_error: float = 0.0,
                 threshold: float = 0.0,
                 adaptive: AdaptiveThreshold | None = None,
                 rng: np.random.Generator | int | None = None):
        if reallocation_period < 1:
            raise ValueError("reallocation period must be >= 1")
        self.nodes = nodes
        self.trace = trace
        self.placer = placer
        self.policy = policy
        self.period = reallocation_period
        self.max_error = max_error
        self.threshold = threshold
        self.adaptive = adaptive
        self.rng = as_generator(rng)
        self._true = self._scaled_services(trace.services, cpu_need_scale)
        # Estimates are drawn once per service (the manager's belief).
        self._noisy = (perturb_cpu_needs(self._true, max_error, rng=self.rng)
                       if max_error > 0 else self._true)
        initial = adaptive.value if adaptive is not None else threshold
        self._estimates = apply_minimum_threshold(self._noisy, initial)
        # descriptor index -> node, for currently placed services.
        self._placement: dict[int, int] = {}

    @staticmethod
    def _scaled_services(services: ServiceArray, scale: float) -> ServiceArray:
        need_elem = services.need_elem.copy()
        need_agg = services.need_agg.copy()
        need_elem[:, CPU] *= scale
        need_agg[:, CPU] *= scale
        return ServiceArray.from_arrays(
            services.req_elem, services.req_agg, need_elem, need_agg,
            names=services.names)

    # ------------------------------------------------------------------
    def _subset(self, services: ServiceArray, ids: np.ndarray) -> ServiceArray:
        return ServiceArray.from_arrays(
            services.req_elem[ids], services.req_agg[ids],
            services.need_elem[ids], services.need_agg[ids],
            names=[services.names[i] for i in ids])

    def _full_reallocation(self, active: np.ndarray
                           ) -> tuple[dict[int, int], float | None]:
        """Re-pack the whole active set; returns (placement, promised
        minimum yield under the estimates, or None on failure)."""
        if self.adaptive is not None:
            self._estimates = apply_minimum_threshold(
                self._noisy, self.adaptive.value)
        est_instance = ProblemInstance(
            self.nodes, self._subset(self._estimates, active))
        alloc = self.placer(est_instance)
        if alloc is None:
            return {}, None
        placement = {int(sid): int(h)
                     for sid, h in zip(active, alloc.placement)}
        return placement, alloc.minimum_yield()

    def _incremental_placement(self, active: np.ndarray) -> dict[int, int]:
        """Keep current placements; best-fit the newcomers one by one."""
        placement = {sid: h for sid, h in self._placement.items()
                     if sid in set(active.tolist())}
        est = self._estimates
        loads = np.zeros_like(self.nodes.aggregate)
        for sid, h in placement.items():
            loads[h] += est.req_agg[sid]
        for sid in active:
            sid = int(sid)
            if sid in placement:
                continue
            fits = ((est.req_elem[sid] <= self.nodes.elementary + 1e-12)
                    .all(axis=1)
                    & (loads + est.req_agg[sid]
                       <= self.nodes.aggregate + 1e-12).all(axis=1))
            cands = np.flatnonzero(fits)
            if cands.size == 0:
                continue  # stays pending this step
            remaining = (self.nodes.aggregate[cands]
                         - loads[cands]).sum(axis=1)
            h = int(cands[np.argmin(remaining)])  # best fit
            placement[sid] = h
            loads[h] += est.req_agg[sid]
        return placement

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        result = SimulationResult()
        for t in range(self.trace.horizon):
            active = self.trace.active_indices(t)
            if active.size == 0:
                self._placement = {}
                result.steps.append(StepRecord(t, 0, 0, 0, 0, 1.0, 1.0))
                continue

            promised: float | None = None
            if t % self.period == 0:
                new_placement, promised = self._full_reallocation(active)
                if not new_placement:
                    # Full re-pack failed (e.g. transient overload); fall
                    # back to incremental so running services survive.
                    new_placement = self._incremental_placement(active)
            else:
                new_placement = self._incremental_placement(active)

            migrations = sum(
                1 for sid, h in new_placement.items()
                if sid in self._placement and self._placement[sid] != h)
            self._placement = new_placement

            placed_ids = np.array(sorted(new_placement), dtype=np.int64)
            pending = active.size - placed_ids.size
            if placed_ids.size:
                true_instance = ProblemInstance(
                    self.nodes, self._subset(self._true, placed_ids))
                est_instance = ProblemInstance(
                    self.nodes, self._subset(self._estimates, placed_ids))
                placement_arr = np.array(
                    [new_placement[int(s)] for s in placed_ids],
                    dtype=np.int64)
                yields = evaluate_actual_yields(
                    true_instance, placement_arr, self.policy,
                    estimated_instance=est_instance)
                min_y, mean_y = float(yields.min()), float(yields.mean())
            else:
                min_y = mean_y = 0.0
            if self.adaptive is not None and promised is not None:
                self.adaptive.observe(promised, min_y)
            result.steps.append(StepRecord(
                time=t, active=int(active.size), placed=int(placed_ids.size),
                pending=int(pending), migrations=migrations,
                min_yield=min_y, mean_yield=mean_y))
        return result
