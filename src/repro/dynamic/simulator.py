"""Discrete-time simulation of a dynamically-managed hosting platform.

Implements the deployment scenario from the paper's conclusion: the
resource manager runs METAHVPLIGHT (or any registered placement
algorithm) on *estimated* CPU needs, optionally hardened with the §6
minimum-threshold mitigation, while services arrive and depart.  Between
full re-allocation epochs, new arrivals are slotted in with a cheap
best-fit so running services are not disturbed; at each epoch the whole
active set is re-packed and the services that moved count as migrations.

Every step, the runtime layer shares each node's CPU with a §6 policy
and the simulator records the yields actually achieved against the true
needs.

**Hot path.**  Placements are array-resident: one ``(N,)`` assignment
array over all trace descriptors (−1 = not placed) and one ``(H, D)``
node-load array maintained incrementally across steps — departures
subtract their demand, arrivals add theirs, and a full re-allocation
rebuilds both.  Newcomer best-fit dispatches to the active kernel
backend (:mod:`repro.kernels`).  Full re-allocations are *warm-started*:
each epoch's yield search is seeded with the previous epoch's certified
yield, cutting the probe count by ~2× at matching certified yields (see
:mod:`repro.algorithms.yield_search`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..algorithms.base import NamedAlgorithm
from ..core.instance import ProblemInstance
from ..core.node import NodeArray
from ..core.resources import FEASIBILITY_ATOL, FEASIBILITY_RTOL
from ..core.service import ServiceArray
from ..sharing.adaptive import AdaptiveThreshold
from ..sharing.baseline import evaluate_actual_yields
from ..sharing.errors import apply_minimum_threshold, perturb_cpu_needs
from ..util.rng import as_generator
from .events import WorkloadTrace
from .incremental import (
    INCREMENTAL_TOL as _INCREMENTAL_TOL,
    best_fit_newcomers,
    elem_fit_table,
    rebuild_loads,
)

__all__ = ["DynamicSimulator", "SimulationResult", "StepRecord"]

CPU = 0


@dataclass(frozen=True)
class StepRecord:
    """Metrics for one simulation step."""

    time: int
    active: int
    placed: int
    pending: int
    migrations: int
    min_yield: float
    mean_yield: float


@dataclass
class SimulationResult:
    steps: list[StepRecord] = field(default_factory=list)

    @property
    def total_migrations(self) -> int:
        return sum(s.migrations for s in self.steps)

    @property
    def average_min_yield(self) -> float:
        vals = [s.min_yield for s in self.steps if s.placed > 0]
        return float(np.mean(vals)) if vals else 0.0

    @property
    def average_pending(self) -> float:
        vals = [s.pending for s in self.steps]
        return float(np.mean(vals)) if vals else 0.0

    def as_rows(self) -> list[tuple]:
        return [(s.time, s.active, s.placed, s.pending, s.migrations,
                 round(s.min_yield, 4), round(s.mean_yield, 4))
                for s in self.steps]


class DynamicSimulator:
    """Drives one trace over one platform.

    Parameters
    ----------
    nodes:
        The physical platform.
    trace:
        Workload events (see :mod:`repro.dynamic.events`).
    placer:
        Full re-allocation algorithm, used every ``reallocation_period``
        steps.
    policy:
        Runtime CPU-sharing policy name (``"ALLOCWEIGHTS"`` etc.).
    cpu_need_scale:
        Core-units → capacity-units conversion for the trace's CPU needs
        (the static experiments normalize against total capacity instead;
        a dynamic platform cannot, as its load varies).
    max_error / threshold:
        §6 estimation-error half-width and mitigation threshold applied to
        the CPU needs the placer sees.
    adaptive:
        Optional :class:`AdaptiveThreshold` controller; when given it
        overrides the static ``threshold``, re-thresholding the estimates
        at every re-allocation epoch and learning from the gap between the
        promised and realized minimum yield.
    warm_start:
        Seed each epoch's yield search with the previous epoch's
        certified yield (placers that expose ``solve_with_hint`` only —
        the META* solvers do).  Certified yields match the cold search;
        the strategy winning the final probe — and hence the placement —
        can in principle differ (the v2 engine's usual equivalence
        envelope; the reference workloads are asserted row-identical in
        the tests/benchmarks).  ``search_probes``/``search_solves``
        count the oracle work across the run.
    validate_loads:
        Debug aid: re-derive the node loads from scratch every step and
        assert the incrementally maintained array matches.
    """

    def __init__(self,
                 nodes: NodeArray,
                 trace: WorkloadTrace,
                 placer: NamedAlgorithm,
                 policy: str = "ALLOCWEIGHTS",
                 reallocation_period: int = 5,
                 cpu_need_scale: float = 0.08,
                 max_error: float = 0.0,
                 threshold: float = 0.0,
                 adaptive: AdaptiveThreshold | None = None,
                 rng: np.random.Generator | int | None = None,
                 warm_start: bool = True,
                 validate_loads: bool = False):
        if reallocation_period < 1:
            raise ValueError("reallocation period must be >= 1")
        self.nodes = nodes
        self.trace = trace
        self.placer = placer
        self.policy = policy
        self.period = reallocation_period
        self.max_error = max_error
        self.threshold = threshold
        self.adaptive = adaptive
        self.rng = as_generator(rng)
        self.warm_start = warm_start
        self.validate_loads = validate_loads
        self._true = self._scaled_services(trace.services, cpu_need_scale)
        # Estimates are drawn once per service (the manager's belief).
        self._noisy = (perturb_cpu_needs(self._true, max_error, rng=self.rng)
                       if max_error > 0 else self._true)
        initial = adaptive.value if adaptive is not None else threshold
        self._estimates = apply_minimum_threshold(self._noisy, initial)
        # Array-resident placement state: descriptor -> node (-1 unplaced),
        # plus the loads those placements put on each node (under the
        # *estimates*, which is what admission decisions are made on).
        n = len(trace.services)
        self._assigned = np.full(n, -1, dtype=np.int64)
        self._loads = np.zeros_like(nodes.aggregate)
        self._agg_cap_tol = nodes.aggregate + _INCREMENTAL_TOL
        self._elem_fit: np.ndarray | None = None  # (N, H), lazy
        # Warm-start memory and oracle-work counters.
        self._hint: float | None = None
        self._hint_ub: float | None = None
        self._est_version = 0
        self._memo_key: tuple | None = None
        self._memo_alloc = None
        self.search_probes = 0
        self.search_solves = 0

    @staticmethod
    def _scaled_services(services: ServiceArray, scale: float) -> ServiceArray:
        need_elem = services.need_elem.copy()
        need_agg = services.need_agg.copy()
        need_elem[:, CPU] *= scale
        need_agg[:, CPU] *= scale
        return ServiceArray.from_arrays(
            services.req_elem, services.req_agg, need_elem, need_agg,
            names=services.names)

    # ------------------------------------------------------------------
    def _subset(self, services: ServiceArray, ids: np.ndarray) -> ServiceArray:
        return ServiceArray.from_arrays(
            services.req_elem[ids], services.req_agg[ids],
            services.need_elem[ids], services.need_agg[ids],
            names=[services.names[i] for i in ids])

    def _set_estimates(self, estimates: ServiceArray) -> None:
        self._estimates = estimates
        self._elem_fit = None  # rigid requirements changed
        self._est_version += 1

    def _elem_fit_table(self) -> np.ndarray:
        """``(N, H)`` static "requirement fits one element" table for the
        current estimates (newcomers are admitted at yield 0)."""
        if self._elem_fit is None:
            self._elem_fit = elem_fit_table(self._estimates.req_elem,
                                            self.nodes)
        return self._elem_fit

    def _rebuild_loads(self) -> np.ndarray:
        """Node loads re-derived from the assignment array."""
        return rebuild_loads(self._assigned, self._estimates.req_agg,
                             self.nodes)

    def _solve(self, instance: ProblemInstance):
        """Run the placer, warm-started when it supports hints.

        The hint is the previous epoch's certified yield *scaled by the
        ratio of the two epochs' capacity bounds*: the bound moves with
        the active set's total load, so the scaling predicts most of the
        epoch-over-epoch drift and the search only has to absorb the
        packing-efficiency residue.
        """
        fn = getattr(self.placer, "fn", self.placer)
        if not getattr(fn, "supports_hint", False):
            return self.placer(instance)
        if self.warm_start:
            # Steady-state epochs often re-pose the *identical* instance
            # (same active set, unchanged estimates); the deterministic
            # solver would reproduce the previous answer probe for
            # probe, so reuse it outright.
            key = (self._est_version, self._active_key)
            if key == self._memo_key:
                self.search_solves += 1
                return self._memo_alloc
        hint = None
        ub = instance.yield_upper_bound()
        if self.warm_start and self._hint is not None and self._hint_ub:
            hint = self._hint * ub / self._hint_ub
        stats: dict = {}
        alloc = fn.solve_with_hint(instance, hint=hint, stats=stats)
        self.search_probes += stats.get("probes", 0)
        self.search_solves += 1
        if alloc is not None:
            self._hint = stats.get("certified")
            self._hint_ub = ub
        if self.warm_start:
            self._memo_key = (self._est_version, self._active_key)
            self._memo_alloc = alloc
        return alloc

    def _full_reallocation(self, active: np.ndarray) -> float | None:
        """Re-pack the whole active set in place; returns the promised
        minimum yield under the estimates, or None on failure (state
        untouched)."""
        if self.adaptive is not None:
            self._set_estimates(apply_minimum_threshold(
                self._noisy, self.adaptive.value))
        est_instance = ProblemInstance(
            self.nodes, self._subset(self._estimates, active))
        self._active_key = active.tobytes()
        alloc = self._solve(est_instance)
        if alloc is None:
            return None
        self._assigned[:] = -1
        self._assigned[active] = alloc.placement
        self._loads = self._rebuild_loads()
        return alloc.minimum_yield()

    def _incremental_placement(self, active_mask: np.ndarray,
                               active: np.ndarray) -> None:
        """Retire departures, keep current placements, best-fit newcomers.

        The departed services' demands are subtracted from the
        incrementally maintained loads; the newcomers go through the
        kernel backend's best-fit (least total remaining capacity, ties
        to the lowest node index).  Unplaceable newcomers stay pending
        and are retried next step.
        """
        est = self._estimates
        departed = np.flatnonzero((self._assigned >= 0) & ~active_mask)
        if departed.size:
            np.subtract.at(self._loads, self._assigned[departed],
                           est.req_agg[departed])
            self._assigned[departed] = -1
        newcomers = active[self._assigned[active] < 0]
        if newcomers.size:
            chosen = best_fit_newcomers(
                est.req_agg[newcomers],
                self._elem_fit_table()[newcomers],
                self._loads, self.nodes, cap_tol=self._agg_cap_tol)
            placed = chosen >= 0
            self._assigned[newcomers[placed]] = chosen[placed]

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        result = SimulationResult()
        for t in range(self.trace.horizon):
            active = self.trace.active_indices(t)
            if active.size == 0:
                self._assigned[:] = -1
                self._loads[:] = 0.0
                result.steps.append(StepRecord(t, 0, 0, 0, 0, 1.0, 1.0))
                continue
            active_mask = np.zeros(self._assigned.shape[0], dtype=bool)
            active_mask[active] = True

            prev_assigned = self._assigned.copy()
            promised: float | None = None
            if t % self.period == 0:
                if obs.enabled():
                    probes_before = self.search_probes
                    with obs.span("dynamic.epoch") as sp:
                        promised = self._full_reallocation(active)
                        sp.annotate(
                            t=t, active=int(active.size),
                            probes=self.search_probes - probes_before,
                            promised=(None if promised is None
                                      else round(promised, 6)))
                else:
                    promised = self._full_reallocation(active)
                if promised is None:
                    # Full re-pack failed (e.g. transient overload); fall
                    # back to incremental so running services survive.
                    # The estimates may have moved (adaptive threshold),
                    # so re-derive the loads they imply first.
                    self._loads = self._rebuild_loads()
                    self._incremental_placement(active_mask, active)
            else:
                self._incremental_placement(active_mask, active)

            migrations = int(np.count_nonzero(
                (prev_assigned >= 0) & (self._assigned >= 0)
                & (prev_assigned != self._assigned)))

            placed_ids = np.flatnonzero(self._assigned >= 0)
            pending = int(active.size - placed_ids.size)
            if placed_ids.size:
                true_instance = ProblemInstance(
                    self.nodes, self._subset(self._true, placed_ids))
                est_instance = ProblemInstance(
                    self.nodes, self._subset(self._estimates, placed_ids))
                placement_arr = self._assigned[placed_ids]
                yields = evaluate_actual_yields(
                    true_instance, placement_arr, self.policy,
                    estimated_instance=est_instance)
                min_y, mean_y = float(yields.min()), float(yields.mean())
            else:
                min_y = mean_y = 0.0
            if self.adaptive is not None and promised is not None:
                self.adaptive.observe(promised, min_y)
            if self.validate_loads:
                expected = self._rebuild_loads()
                if not np.allclose(self._loads, expected,
                                   rtol=FEASIBILITY_RTOL, atol=FEASIBILITY_ATOL):
                    raise AssertionError(
                        f"incremental loads drifted at t={t}: "
                        f"max |Δ|={np.abs(self._loads - expected).max()}")
            result.steps.append(StepRecord(
                time=t, active=int(active.size), placed=int(placed_ids.size),
                pending=pending, migrations=migrations,
                min_yield=min_y, mean_yield=mean_y))
        return result
