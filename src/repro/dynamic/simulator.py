"""Discrete-time simulation of a dynamically-managed hosting platform.

Implements the deployment scenario from the paper's conclusion: the
resource manager runs METAHVPLIGHT (or any registered placement
algorithm) on *estimated* CPU needs, optionally hardened with the §6
minimum-threshold mitigation, while services arrive and depart.  Between
full re-allocation epochs, new arrivals are slotted in with a cheap
best-fit so running services are not disturbed; at each epoch the whole
active set is re-packed and the services that moved count as migrations.

Every step, the runtime layer shares each node's CPU with a §6 policy
and the simulator records the yields actually achieved against the true
needs.

**Platform churn.**  An optional :class:`~repro.dynamic.failures.
PlatformSchedule` makes the platform itself dynamic: nodes fail, recover
and change capacity mid-run.  Failure handling is repair-first — the
displaced services are evicted and re-placed via the incremental
best-fit on the surviving platform (survivors stay put; that is the
migration-cost-aware preference), while full epochs re-pack everything
on whatever platform is up.  ``forced_migrations`` counts displaced
services that landed again, ``displaced`` the ones still pending
because of churn.  Per-service SLA classes (:mod:`repro.core.sla`) add
differentiated minimum-yield floors; every active service below its
floor is one SLA-violation service-step.

**Hot path.**  Placements are array-resident: one ``(N,)`` assignment
array over all trace descriptors (−1 = not placed) and one ``(H, D)``
node-load array maintained incrementally across steps — departures
subtract their demand, arrivals add theirs, and a full re-allocation
rebuilds both.  Newcomer best-fit dispatches to the active kernel
backend (:mod:`repro.kernels`).  Full re-allocations are *warm-started*:
each epoch's yield search is seeded with the previous epoch's certified
yield, cutting the probe count by ~2× at matching certified yields (see
:mod:`repro.algorithms.yield_search`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .. import obs
from ..algorithms.base import NamedAlgorithm
from ..core.instance import ProblemInstance
from ..core.node import NodeArray
from ..core.resources import FEASIBILITY_ATOL, FEASIBILITY_RTOL
from ..core.service import ServiceArray
from ..core.sla import SLA_FLOOR_ATOL, SLA_NAMES, sla_floors
from ..sharing.adaptive import AdaptiveThreshold
from ..sharing.baseline import evaluate_actual_yields
from ..sharing.errors import apply_minimum_threshold, perturb_cpu_needs
from ..util.rng import as_generator
from .events import WorkloadTrace
from .failures import PlatformEvent, PlatformSchedule
from .incremental import (
    INCREMENTAL_TOL as _INCREMENTAL_TOL,
    best_fit_newcomers,
    elem_fit_table,
    masked_fit_tables,
    rebuild_loads,
)

__all__ = ["DynamicSimulator", "SimulationResult", "StepRecord"]

CPU = 0


@dataclass(frozen=True)
class StepRecord:
    """Metrics for one simulation step."""

    time: int
    active: int
    placed: int
    pending: int
    migrations: int
    min_yield: float
    mean_yield: float
    failed_nodes: int = 0
    forced_migrations: int = 0
    displaced: int = 0
    sla_violations: int = 0


@dataclass
class SimulationResult:
    steps: list[StepRecord] = field(default_factory=list)
    #: Per-SLA-class violation service-step totals (empty when the run
    #: carried no SLA annotation).
    sla_violations: dict[str, int] = field(default_factory=dict)

    @property
    def total_migrations(self) -> int:
        return sum(s.migrations for s in self.steps)

    @property
    def total_forced_migrations(self) -> int:
        return sum(s.forced_migrations for s in self.steps)

    @property
    def displaced_service_steps(self) -> int:
        return sum(s.displaced for s in self.steps)

    @property
    def total_sla_violations(self) -> int:
        return sum(s.sla_violations for s in self.steps)

    @property
    def average_min_yield(self) -> float:
        vals = [s.min_yield for s in self.steps if s.placed > 0]
        return float(np.mean(vals)) if vals else 0.0

    @property
    def average_pending(self) -> float:
        vals = [s.pending for s in self.steps]
        return float(np.mean(vals)) if vals else 0.0

    def as_rows(self) -> list[tuple]:
        return [(s.time, s.active, s.placed, s.pending, s.migrations,
                 round(s.min_yield, 4), round(s.mean_yield, 4),
                 s.failed_nodes, s.forced_migrations, s.displaced,
                 s.sla_violations)
                for s in self.steps]


class DynamicSimulator:
    """Drives one trace over one platform.

    Parameters
    ----------
    nodes:
        The physical platform.
    trace:
        Workload events (see :mod:`repro.dynamic.events`).
    placer:
        Full re-allocation algorithm, used every ``reallocation_period``
        steps.
    policy:
        Runtime CPU-sharing policy name (``"ALLOCWEIGHTS"`` etc.).
    cpu_need_scale:
        Core-units → capacity-units conversion for the trace's CPU needs
        (the static experiments normalize against total capacity instead;
        a dynamic platform cannot, as its load varies).
    max_error / threshold:
        §6 estimation-error half-width and mitigation threshold applied to
        the CPU needs the placer sees.
    adaptive:
        Optional :class:`AdaptiveThreshold` controller; when given it
        overrides the static ``threshold``, re-thresholding the estimates
        at every re-allocation epoch and learning from the gap between the
        promised and realized minimum yield.
    warm_start:
        Seed each epoch's yield search with the previous epoch's
        certified yield (placers that expose ``solve_with_hint`` only —
        the META* solvers do).  Certified yields match the cold search;
        the strategy winning the final probe — and hence the placement —
        can in principle differ (the v2 engine's usual equivalence
        envelope; the reference workloads are asserted row-identical in
        the tests/benchmarks).  ``search_probes``/``search_solves``
        count the oracle work across the run.
    failures:
        Optional :class:`~repro.dynamic.failures.PlatformSchedule`.
        ``None`` (the default) reproduces the fixed-platform behavior
        bit-exactly.
    sla:
        Optional per-descriptor SLA class names; defaults to the
        trace's own annotation (``trace.sla``).  ``None`` disables the
        violation accounting entirely.
    validate_loads:
        Debug aid: re-derive the node loads from scratch every step and
        assert the incrementally maintained array matches.
    """

    def __init__(self,
                 nodes: NodeArray,
                 trace: WorkloadTrace,
                 placer: NamedAlgorithm,
                 policy: str = "ALLOCWEIGHTS",
                 reallocation_period: int = 5,
                 cpu_need_scale: float = 0.08,
                 max_error: float = 0.0,
                 threshold: float = 0.0,
                 adaptive: AdaptiveThreshold | None = None,
                 rng: np.random.Generator | int | None = None,
                 warm_start: bool = True,
                 failures: PlatformSchedule | Sequence[PlatformEvent]
                 | None = None,
                 sla: Sequence[str] | None = None,
                 validate_loads: bool = False):
        if reallocation_period < 1:
            raise ValueError("reallocation period must be >= 1")
        if failures is not None and not isinstance(failures,
                                                   PlatformSchedule):
            # a raw event stream (e.g. straight from
            # generate_platform_events) compiles against this run's shape
            failures = PlatformSchedule(horizon=trace.horizon,
                                        n_nodes=len(nodes),
                                        events=tuple(failures))
        if failures is not None:
            if failures.n_nodes != len(nodes):
                raise ValueError(
                    f"failure schedule covers {failures.n_nodes} nodes, "
                    f"platform has {len(nodes)}")
            if failures.horizon < trace.horizon:
                raise ValueError(
                    f"failure schedule horizon {failures.horizon} shorter "
                    f"than trace horizon {trace.horizon}")
        self.nodes = nodes
        self.trace = trace
        self.placer = placer
        self.policy = policy
        self.period = reallocation_period
        self.max_error = max_error
        self.threshold = threshold
        self.adaptive = adaptive
        self.rng = as_generator(rng)
        self.warm_start = warm_start
        self.validate_loads = validate_loads
        self._true = self._scaled_services(trace.services, cpu_need_scale)
        # Estimates are drawn once per service (the manager's belief).
        self._noisy = (perturb_cpu_needs(self._true, max_error, rng=self.rng)
                       if max_error > 0 else self._true)
        initial = adaptive.value if adaptive is not None else threshold
        self._estimates = apply_minimum_threshold(self._noisy, initial)
        # Array-resident placement state: descriptor -> node (-1 unplaced),
        # plus the loads those placements put on each node (under the
        # *estimates*, which is what admission decisions are made on).
        n = len(trace.services)
        self._assigned = np.full(n, -1, dtype=np.int64)
        self._loads = np.zeros_like(nodes.aggregate)
        self._agg_cap_tol = nodes.aggregate + _INCREMENTAL_TOL
        self._elem_fit: np.ndarray | None = None  # (N, H), lazy
        # Platform churn state: availability mask, capacity scale, the
        # displaced-service flags, and the caches they invalidate.
        self._failures = failures
        self._avail = np.ones(len(nodes), dtype=bool)
        self._scale = np.ones(len(nodes), dtype=np.float64)
        self._platform_version = 0
        self._displaced = np.zeros(n, dtype=bool)
        self._fit_key: tuple | None = None
        self._fit_elem: np.ndarray | None = None
        self._fit_cap: np.ndarray | None = None
        self._eff_key = -1
        self._eff_nodes: NodeArray | None = None
        self._eff_idx: np.ndarray | None = None
        self._eff_pos: np.ndarray | None = None
        # SLA floors (per descriptor) — default to the trace annotation.
        names = tuple(sla) if sla is not None else trace.sla
        if names is not None and len(names) != n:
            raise ValueError(
                f"got {len(names)} SLA classes for {n} services")
        self._sla_names = names
        self._sla_floors = sla_floors(names) if names is not None else None
        self._sla_codes = (np.array([SLA_NAMES.index(x) for x in names],
                                    dtype=np.int64)
                           if names is not None else None)
        # Warm-start memory and oracle-work counters.
        self._hint: float | None = None
        self._hint_ub: float | None = None
        self._est_version = 0
        self._memo_key: tuple | None = None
        self._memo_alloc = None
        self.search_probes = 0
        self.search_solves = 0

    @staticmethod
    def _scaled_services(services: ServiceArray, scale: float) -> ServiceArray:
        need_elem = services.need_elem.copy()
        need_agg = services.need_agg.copy()
        need_elem[:, CPU] *= scale
        need_agg[:, CPU] *= scale
        return ServiceArray.from_arrays(
            services.req_elem, services.req_agg, need_elem, need_agg,
            names=services.names)

    # ------------------------------------------------------------------
    def _subset(self, services: ServiceArray, ids: np.ndarray) -> ServiceArray:
        return ServiceArray.from_arrays(
            services.req_elem[ids], services.req_agg[ids],
            services.need_elem[ids], services.need_agg[ids],
            names=[services.names[i] for i in ids])

    def _set_estimates(self, estimates: ServiceArray) -> None:
        self._estimates = estimates
        self._elem_fit = None  # rigid requirements changed
        self._est_version += 1

    def _elem_fit_table(self) -> np.ndarray:
        """``(N, H)`` static "requirement fits one element" table for the
        current estimates (newcomers are admitted at yield 0)."""
        if self._elem_fit is None:
            self._elem_fit = elem_fit_table(self._estimates.req_elem,
                                            self.nodes)
        return self._elem_fit

    def _current_fit(self) -> tuple[np.ndarray, np.ndarray]:
        """Elementary-fit table and aggregate cap-with-slack for the
        platform that is currently up (base tables when churn-free)."""
        if self._failures is None:
            return self._elem_fit_table(), self._agg_cap_tol
        key = (self._est_version, self._platform_version)
        if self._fit_key != key:
            self._fit_elem, self._fit_cap = masked_fit_tables(
                self._estimates.req_elem, self.nodes,
                self._avail, self._scale)
            self._fit_key = key
        assert self._fit_elem is not None and self._fit_cap is not None
        return self._fit_elem, self._fit_cap

    def _eff_platform(self) -> tuple[NodeArray | None, np.ndarray, np.ndarray]:
        """Effective platform: the up nodes at their current scale.

        Returns ``(nodes, idx, pos)`` where *nodes* is a NodeArray over
        the up nodes (``self.nodes`` itself when the platform is whole,
        ``None`` when everything is down), *idx* maps effective → global
        node indices and *pos* the inverse (−1 for down nodes).
        """
        if self._eff_key != self._platform_version:
            idx = np.flatnonzero(self._avail)
            if idx.size == 0:
                self._eff_nodes = None
            elif idx.size == len(self.nodes) and (self._scale == 1.0).all():
                self._eff_nodes = self.nodes
            else:
                sc = self._scale[idx, None]
                self._eff_nodes = NodeArray.from_arrays(
                    self.nodes.elementary[idx] * sc,
                    self.nodes.aggregate[idx] * sc,
                    [self.nodes.names[i] for i in idx])
            pos = np.full(len(self.nodes), -1, dtype=np.int64)
            pos[idx] = np.arange(idx.size)
            self._eff_idx = idx
            self._eff_pos = pos
            self._eff_key = self._platform_version
        assert self._eff_idx is not None and self._eff_pos is not None
        return self._eff_nodes, self._eff_idx, self._eff_pos

    def _apply_platform(self, t: int) -> int:
        """Bring churn state up to step *t*; evict displaced services.

        Services on nodes that went down are evicted outright; a node
        whose capacity shrank sheds its newest services (highest
        descriptor index = latest arrival) until the remaining load
        fits.  Returns the eviction count.  Evicted services keep their
        ``displaced`` flag until they are placed again (a *forced
        migration*) or depart.
        """
        assert self._failures is not None
        mask = self._failures.mask_at(t)
        scale = self._failures.scale_at(t)
        if bool((mask == self._avail).all()) and bool((scale == self._scale).all()):
            return 0
        self._avail = mask.copy()
        self._scale = scale.copy()
        self._platform_version += 1
        evicted = 0
        placed = np.flatnonzero(self._assigned >= 0)
        on_down = placed[~mask[self._assigned[placed]]]
        if on_down.size:
            np.subtract.at(self._loads, self._assigned[on_down],
                           self._estimates.req_agg[on_down])
            self._assigned[on_down] = -1
            self._displaced[on_down] = True
            evicted += int(on_down.size)
        cap = self.nodes.aggregate * scale[:, None] + _INCREMENTAL_TOL
        for h in np.flatnonzero(mask):
            while bool((self._loads[h] > cap[h]).any()):
                victims = np.flatnonzero(self._assigned == h)
                if victims.size == 0:
                    break  # residual float dust only; nothing to shed
                j = victims[-1]
                self._loads[h] -= self._estimates.req_agg[j]
                self._assigned[j] = -1
                self._displaced[j] = True
                evicted += 1
        return evicted

    def _rebuild_loads(self) -> np.ndarray:
        """Node loads re-derived from the assignment array."""
        return rebuild_loads(self._assigned, self._estimates.req_agg,
                             self.nodes)

    def _solve(self, instance: ProblemInstance):
        """Run the placer, warm-started when it supports hints.

        The hint is the previous epoch's certified yield *scaled by the
        ratio of the two epochs' capacity bounds*: the bound moves with
        the active set's total load, so the scaling predicts most of the
        epoch-over-epoch drift and the search only has to absorb the
        packing-efficiency residue.
        """
        fn = getattr(self.placer, "fn", self.placer)
        if not getattr(fn, "supports_hint", False):
            return self.placer(instance)
        if self.warm_start:
            # Steady-state epochs often re-pose the *identical* instance
            # (same active set, unchanged estimates, same platform); the
            # deterministic solver would reproduce the previous answer
            # probe for probe, so reuse it outright.
            key = (self._est_version, self._platform_version,
                   self._active_key)
            if key == self._memo_key:
                self.search_solves += 1
                return self._memo_alloc
        hint = None
        ub = instance.yield_upper_bound()
        if self.warm_start and self._hint is not None and self._hint_ub:
            hint = self._hint * ub / self._hint_ub
        stats: dict = {}
        alloc = fn.solve_with_hint(instance, hint=hint, stats=stats)
        self.search_probes += stats.get("probes", 0)
        self.search_solves += 1
        if alloc is not None:
            self._hint = stats.get("certified")
            self._hint_ub = ub
        if self.warm_start:
            self._memo_key = (self._est_version, self._platform_version,
                              self._active_key)
            self._memo_alloc = alloc
        return alloc

    def _full_reallocation(self, active: np.ndarray) -> float | None:
        """Re-pack the whole active set in place; returns the promised
        minimum yield under the estimates, or None on failure (state
        untouched)."""
        if self.adaptive is not None:
            self._set_estimates(apply_minimum_threshold(
                self._noisy, self.adaptive.value))
        eff_nodes, eff_idx, _ = self._eff_platform()
        if eff_nodes is None:
            return None  # whole platform down
        est_instance = ProblemInstance(
            eff_nodes, self._subset(self._estimates, active))
        self._active_key = active.tobytes()
        alloc = self._solve(est_instance)
        if alloc is None:
            return None
        self._assigned[:] = -1
        self._assigned[active] = eff_idx[alloc.placement]
        self._loads = self._rebuild_loads()
        return alloc.minimum_yield()

    def _incremental_placement(self, active_mask: np.ndarray,
                               active: np.ndarray) -> None:
        """Retire departures, keep current placements, best-fit newcomers.

        The departed services' demands are subtracted from the
        incrementally maintained loads; the newcomers go through the
        kernel backend's best-fit (least total remaining capacity, ties
        to the lowest node index) against the platform that is up.
        Unplaceable newcomers stay pending and are retried next step.
        """
        est = self._estimates
        departed = np.flatnonzero((self._assigned >= 0) & ~active_mask)
        if departed.size:
            np.subtract.at(self._loads, self._assigned[departed],
                           est.req_agg[departed])
            self._assigned[departed] = -1
        newcomers = active[self._assigned[active] < 0]
        if newcomers.size:
            elem_fit, cap_tol = self._current_fit()
            chosen = best_fit_newcomers(
                est.req_agg[newcomers],
                elem_fit[newcomers],
                self._loads, self.nodes, cap_tol=cap_tol)
            placed = chosen >= 0
            self._assigned[newcomers[placed]] = chosen[placed]

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        result = SimulationResult()
        if self._sla_floors is not None:
            result.sla_violations = {name: 0 for name in SLA_NAMES}
        for t in range(self.trace.horizon):
            if self._failures is not None:
                self._apply_platform(t)
            down_nodes = (int(np.count_nonzero(~self._avail))
                          if self._failures is not None else 0)
            active = self.trace.active_indices(t)
            if active.size == 0:
                self._assigned[:] = -1
                self._loads[:] = 0.0
                self._displaced[:] = False
                result.steps.append(StepRecord(t, 0, 0, 0, 0, 1.0, 1.0,
                                               failed_nodes=down_nodes))
                continue
            active_mask = np.zeros(self._assigned.shape[0], dtype=bool)
            active_mask[active] = True

            prev_assigned = self._assigned.copy()
            promised: float | None = None
            if t % self.period == 0:
                if obs.enabled():
                    probes_before = self.search_probes
                    with obs.span("dynamic.epoch") as sp:
                        promised = self._full_reallocation(active)
                        sp.annotate(
                            t=t, active=int(active.size),
                            probes=self.search_probes - probes_before,
                            promised=(None if promised is None
                                      else round(promised, 6)))
                else:
                    promised = self._full_reallocation(active)
                if promised is None:
                    # Full re-pack failed (e.g. transient overload); fall
                    # back to incremental so running services survive.
                    # The estimates may have moved (adaptive threshold),
                    # so re-derive the loads they imply first.
                    self._loads = self._rebuild_loads()
                    self._incremental_placement(active_mask, active)
            else:
                self._incremental_placement(active_mask, active)

            migrations = int(np.count_nonzero(
                (prev_assigned >= 0) & (self._assigned >= 0)
                & (prev_assigned != self._assigned)))

            placed_ids = np.flatnonzero(self._assigned >= 0)
            pending = int(active.size - placed_ids.size)
            yields = None
            if placed_ids.size:
                eval_nodes, _, eff_pos = self._eff_platform()
                assert eval_nodes is not None  # placements imply up nodes
                true_instance = ProblemInstance(
                    eval_nodes, self._subset(self._true, placed_ids))
                est_instance = ProblemInstance(
                    eval_nodes, self._subset(self._estimates, placed_ids))
                placement_arr = eff_pos[self._assigned[placed_ids]]
                yields = evaluate_actual_yields(
                    true_instance, placement_arr, self.policy,
                    estimated_instance=est_instance)
                min_y, mean_y = float(yields.min()), float(yields.mean())
            else:
                min_y = mean_y = 0.0

            # Churn accounting: a displaced service that landed again is
            # a forced migration; one still pending is a displaced
            # service-step; departures drop the flag.
            self._displaced &= active_mask
            forced_mask = self._displaced & (self._assigned >= 0)
            forced = int(np.count_nonzero(forced_mask))
            self._displaced &= ~forced_mask
            displaced_now = int(np.count_nonzero(self._displaced))

            sla_viol = 0
            if self._sla_floors is not None:
                achieved = np.zeros(self._assigned.shape[0])
                if placed_ids.size:
                    achieved[placed_ids] = yields
                violated = active_mask & (
                    achieved < self._sla_floors - SLA_FLOOR_ATOL)
                sla_viol = int(np.count_nonzero(violated))
                if sla_viol:
                    assert self._sla_codes is not None
                    counts = np.bincount(self._sla_codes[violated],
                                         minlength=len(SLA_NAMES))
                    for name, c in zip(SLA_NAMES, counts):
                        result.sla_violations[name] += int(c)

            if self.adaptive is not None and promised is not None:
                self.adaptive.observe(promised, min_y)
            if self.validate_loads:
                expected = self._rebuild_loads()
                if not np.allclose(self._loads, expected,
                                   rtol=FEASIBILITY_RTOL, atol=FEASIBILITY_ATOL):
                    raise AssertionError(
                        f"incremental loads drifted at t={t}: "
                        f"max |Δ|={np.abs(self._loads - expected).max()}")
            result.steps.append(StepRecord(
                time=t, active=int(active.size), placed=int(placed_ids.size),
                pending=pending, migrations=migrations,
                min_yield=min_y, mean_yield=mean_y,
                failed_nodes=down_nodes, forced_migrations=forced,
                displaced=displaced_now, sla_violations=sla_viol))
        return result
