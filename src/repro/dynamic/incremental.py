"""Shared incremental placement-state mutation helpers.

Both consumers of live placement state — the :class:`DynamicSimulator`
(discrete-time simulation) and the online allocation service
(:mod:`repro.service`) — maintain the same three pieces of state between
solver invocations: a per-descriptor node assignment, the aggregate
*requirement* loads those assignments put on each node, and the static
"requirement fits one element" feasibility table.  This module owns the
mutation logic so the two layers cannot drift: departures subtract their
demand, newcomers go through the kernel backend's best-fit
(:meth:`~repro.kernels.api.KernelBackend.incremental_best_fit`), and a
full re-solve rebuilds everything from the assignment array.

Newcomers are admitted at yield 0 — only the rigid requirements count
for feasibility; the fluid needs then share whatever headroom the
placement left (the per-node closed-form max-min of
:func:`repro.core.allocation.max_min_yield_on_node`).
"""

from __future__ import annotations

import numpy as np

from ..core.node import NodeArray
from ..core.resources import STRICT_FIT_ATOL
from ..kernels import get_backend

__all__ = ["INCREMENTAL_TOL", "elem_fit_table", "masked_fit_tables",
           "rebuild_loads", "best_fit_newcomers"]

#: Fit slack of the incremental (non-epoch) best-fit placements —
#: the seed-faithful strict slack (see ``core.resources``).
INCREMENTAL_TOL = STRICT_FIT_ATOL


def elem_fit_table(req_elem: np.ndarray, nodes: NodeArray) -> np.ndarray:
    """``(N, H)`` static "requirement fits one element" table.

    Row *i* marks the nodes whose elementary capacity covers descriptor
    *i*'s rigid elementary requirements in every dimension — the yield-0
    admission precondition.
    """
    return (req_elem[:, None, :]
            <= (nodes.elementary + INCREMENTAL_TOL)[None, :, :]).all(axis=2)


def masked_fit_tables(req_elem: np.ndarray, nodes: NodeArray,
                      avail: np.ndarray, scale: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Fit tables for a degraded platform (node churn, capacity scaling).

    Returns the ``(N, H)`` elementary-fit table against the *scaled*
    elementary capacities with down nodes fully masked out, and the
    ``(H, D)`` aggregate capacity-with-slack array where down nodes get
    −1 so no load can ever fit them.  Both feed straight into
    :func:`best_fit_newcomers`, which keeps survivor placements intact
    and only slots the displaced/new services into the platform that is
    actually up.
    """
    scaled_elem = nodes.elementary * scale[:, None]
    elem_fit = (req_elem[:, None, :]
                <= (scaled_elem + INCREMENTAL_TOL)[None, :, :]).all(axis=2)
    elem_fit &= avail[None, :]
    cap_tol = nodes.aggregate * scale[:, None] + INCREMENTAL_TOL
    cap_tol[~avail] = -1.0
    return elem_fit, cap_tol


def rebuild_loads(assigned: np.ndarray, req_agg: np.ndarray,
                  nodes: NodeArray) -> np.ndarray:
    """``(H, D)`` aggregate requirement loads implied by *assigned*.

    *assigned* maps each descriptor to a node index (−1 = not placed);
    *req_agg* is the matching ``(N, D)`` aggregate-requirement array.
    """
    loads = np.zeros_like(nodes.aggregate)
    placed = np.flatnonzero(assigned >= 0)
    if placed.size:
        np.add.at(loads, assigned[placed], req_agg[placed])
    return loads


def best_fit_newcomers(req_agg: np.ndarray, elem_fit: np.ndarray,
                       loads: np.ndarray, nodes: NodeArray,
                       cap_tol: np.ndarray | None = None) -> np.ndarray:
    """Place newcomers one by one via the kernel backend's best-fit.

    *req_agg* and *elem_fit* carry only the newcomers' rows; *loads* is
    the live ``(H, D)`` requirement-load array and is **updated in
    place** for every descriptor that fits.  Returns the chosen node per
    newcomer (−1 = nothing fits; the caller decides whether that means
    "pending" or "rejected").
    """
    if cap_tol is None:
        cap_tol = nodes.aggregate + INCREMENTAL_TOL
    return get_backend().incremental_best_fit(
        req_agg, elem_fit, loads, nodes.aggregate, cap_tol)
