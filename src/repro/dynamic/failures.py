"""Platform churn: node failures, recoveries, and capacity changes.

The dynamic simulator's original platform never changed — nodes neither
failed nor degraded.  This module adds the churn side of the workload: a
seeded Markov up/down model per node (fail with probability
``failure_rate`` per step while up, recover with ``recovery_rate`` while
down) plus optional capacity-change events that rescale a live node's
elementary and aggregate capacity (a co-located tenant grabbing cores, a
throttled host, a partial repair).

Events compile into a :class:`PlatformSchedule` — per-step availability
masks and capacity scales the simulator consults before placing — so a
failure scenario is replayable: the same seed and rates produce the same
event stream, and a hand-written event list produces the same schedule
with no randomness at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

import numpy as np

from ..util.rng import as_generator

__all__ = [
    "NodeFailure",
    "NodeRecovery",
    "CapacityChange",
    "PlatformEvent",
    "PlatformSchedule",
    "generate_platform_events",
]


@dataclass(frozen=True)
class NodeFailure:
    """Node ``node`` goes down at the start of step ``time``: services
    placed on it are evicted and must be re-placed elsewhere."""

    time: int
    node: int


@dataclass(frozen=True)
class NodeRecovery:
    """Node ``node`` comes back at the start of step ``time`` (at its
    current capacity scale)."""

    time: int
    node: int


@dataclass(frozen=True)
class CapacityChange:
    """Node ``node``'s capacity becomes ``factor`` × its base capacity
    (elementary and aggregate alike) at the start of step ``time``.  The
    factor is absolute with respect to the base platform, not cumulative."""

    time: int
    node: int
    factor: float


PlatformEvent = Union[NodeFailure, NodeRecovery, CapacityChange]


@dataclass(frozen=True)
class PlatformSchedule:
    """Per-step platform state compiled from an event list.

    ``mask_at(t)`` is the ``(H,)`` availability mask and ``scale_at(t)``
    the ``(H,)`` capacity scale in effect *during* step ``t`` — events
    stamped ``time=t`` apply at the start of step ``t``.  All nodes
    start up at scale 1.
    """

    horizon: int
    n_nodes: int
    events: tuple[PlatformEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ValueError("horizon must be positive")
        if self.n_nodes < 1:
            raise ValueError("schedule needs at least one node")
        avail = np.ones((self.horizon, self.n_nodes), dtype=bool)
        scale = np.ones((self.horizon, self.n_nodes), dtype=np.float64)
        by_step: dict[int, list[PlatformEvent]] = {}
        up = np.ones(self.n_nodes, dtype=bool)
        cur = np.ones(self.n_nodes, dtype=np.float64)
        for ev in sorted(self.events, key=lambda e: (e.time, e.node)):
            if not 0 <= ev.time < self.horizon:
                raise ValueError(f"event time {ev.time} outside horizon "
                                 f"[0, {self.horizon})")
            if not 0 <= ev.node < self.n_nodes:
                raise ValueError(f"event node {ev.node} outside platform "
                                 f"of {self.n_nodes} nodes")
            by_step.setdefault(ev.time, []).append(ev)
        for t in range(self.horizon):
            for ev in by_step.get(t, ()):
                if isinstance(ev, NodeFailure):
                    up[ev.node] = False
                elif isinstance(ev, NodeRecovery):
                    up[ev.node] = True
                else:
                    if ev.factor <= 0 or not np.isfinite(ev.factor):
                        raise ValueError(
                            f"capacity factor must be finite and positive, "
                            f"got {ev.factor}")
                    cur[ev.node] = ev.factor
            avail[t] = up
            scale[t] = cur
        avail.setflags(write=False)
        scale.setflags(write=False)
        object.__setattr__(self, "_avail", avail)
        object.__setattr__(self, "_scale", scale)
        object.__setattr__(self, "_by_step", by_step)

    def mask_at(self, t: int) -> np.ndarray:
        """``(H,)`` bool: which nodes are up during step *t*."""
        return self._avail[t]  # type: ignore[attr-defined]

    def scale_at(self, t: int) -> np.ndarray:
        """``(H,)`` float64 capacity scale during step *t*."""
        return self._scale[t]  # type: ignore[attr-defined]

    def events_at(self, t: int) -> tuple[PlatformEvent, ...]:
        return tuple(self._by_step.get(t, ()))  # type: ignore[attr-defined]

    @property
    def total_failures(self) -> int:
        return sum(1 for e in self.events if isinstance(e, NodeFailure))

    @property
    def total_recoveries(self) -> int:
        return sum(1 for e in self.events if isinstance(e, NodeRecovery))

    @property
    def total_capacity_changes(self) -> int:
        return sum(1 for e in self.events if isinstance(e, CapacityChange))


def generate_platform_events(horizon: int,
                             n_nodes: int,
                             failure_rate: float,
                             recovery_rate: float = 0.5,
                             capacity_change_rate: float = 0.0,
                             capacity_factors: Sequence[float] = (0.5, 0.75, 1.0),
                             rng: np.random.Generator | int | None = None,
                             ) -> tuple[PlatformEvent, ...]:
    """Draw a Markov up/down churn stream for ``n_nodes`` nodes.

    Each step from 1 on (step 0 always sees the full platform, so the
    initial placement is well-posed): an up node fails with probability
    ``failure_rate``; a down node recovers with ``recovery_rate``; an up,
    non-failing node redraws its capacity factor from
    ``capacity_factors`` with probability ``capacity_change_rate``.
    Deterministic given the seed — the per-step draw layout is fixed.
    """
    if not 0.0 <= failure_rate <= 1.0:
        raise ValueError("failure_rate must be in [0, 1]")
    if not 0.0 <= recovery_rate <= 1.0:
        raise ValueError("recovery_rate must be in [0, 1]")
    if not 0.0 <= capacity_change_rate <= 1.0:
        raise ValueError("capacity_change_rate must be in [0, 1]")
    if capacity_change_rate > 0 and not capacity_factors:
        raise ValueError("capacity_factors must be non-empty")
    gen = as_generator(rng)
    factors = np.asarray(list(capacity_factors), dtype=np.float64)
    events: list[PlatformEvent] = []
    up = np.ones(n_nodes, dtype=bool)
    for t in range(1, horizon):
        u = gen.random(n_nodes)
        fail = up & (u < failure_rate)
        recover = ~up & (u < recovery_rate)
        if capacity_change_rate > 0:
            v = gen.random(n_nodes)
            change = up & ~fail & (v < capacity_change_rate)
            picks = gen.integers(0, len(factors), size=n_nodes)
        else:
            change = np.zeros(n_nodes, dtype=bool)
            picks = None
        for h in range(n_nodes):
            if fail[h]:
                events.append(NodeFailure(time=t, node=h))
                up[h] = False
            elif recover[h]:
                events.append(NodeRecovery(time=t, node=h))
                up[h] = True
            elif change[h] and picks is not None:
                events.append(CapacityChange(
                    time=t, node=h, factor=float(factors[picks[h]])))
    return tuple(events)
