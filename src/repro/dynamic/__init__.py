"""Dynamic hosting-platform simulation (the paper's future-work scenario):
arrivals/departures, node churn, SLA floors, periodic re-allocation,
migrations, runtime sharing."""

from .events import ServiceEvent, WorkloadTrace, generate_trace
from .failures import (
    CapacityChange,
    NodeFailure,
    NodeRecovery,
    PlatformEvent,
    PlatformSchedule,
    generate_platform_events,
)
from .incremental import (
    INCREMENTAL_TOL,
    best_fit_newcomers,
    elem_fit_table,
    masked_fit_tables,
    rebuild_loads,
)
from .simulator import DynamicSimulator, SimulationResult, StepRecord

__all__ = [
    "CapacityChange",
    "DynamicSimulator",
    "INCREMENTAL_TOL",
    "NodeFailure",
    "NodeRecovery",
    "PlatformEvent",
    "PlatformSchedule",
    "ServiceEvent",
    "SimulationResult",
    "StepRecord",
    "WorkloadTrace",
    "best_fit_newcomers",
    "elem_fit_table",
    "generate_platform_events",
    "generate_trace",
    "masked_fit_tables",
    "rebuild_loads",
]
