"""Dynamic hosting-platform simulation (the paper's future-work scenario):
arrivals/departures, periodic re-allocation, migrations, runtime sharing."""

from .events import ServiceEvent, WorkloadTrace, generate_trace
from .simulator import DynamicSimulator, SimulationResult, StepRecord

__all__ = [
    "DynamicSimulator",
    "ServiceEvent",
    "SimulationResult",
    "StepRecord",
    "WorkloadTrace",
    "generate_trace",
]
