"""Dynamic hosting-platform simulation (the paper's future-work scenario):
arrivals/departures, periodic re-allocation, migrations, runtime sharing."""

from .events import ServiceEvent, WorkloadTrace, generate_trace
from .incremental import (
    INCREMENTAL_TOL,
    best_fit_newcomers,
    elem_fit_table,
    rebuild_loads,
)
from .simulator import DynamicSimulator, SimulationResult, StepRecord

__all__ = [
    "DynamicSimulator",
    "INCREMENTAL_TOL",
    "ServiceEvent",
    "SimulationResult",
    "StepRecord",
    "WorkloadTrace",
    "best_fit_newcomers",
    "elem_fit_table",
    "generate_trace",
    "rebuild_loads",
]
