"""Workload event streams for the dynamic hosting simulation.

The paper's conclusion sketches the next step: deploy METAHVPLIGHT plus
the §6 error mitigation "as part of the resource management component of
an open cloud computing infrastructure" and evaluate it against live
workloads.  This package builds that evaluation substrate as a
discrete-time simulation: services arrive, run for a while (with true
CPU needs the scheduler never sees exactly), and depart; the platform
re-allocates periodically.

This module generates the event streams: Poisson-ish arrivals with
geometric lifetimes, service descriptors drawn from the same
Google-trace-like model as the static experiments, and (optionally) a
per-service SLA class drawn from a weighted mix (see
:mod:`repro.core.sla`).

Per-step queries (``active_indices``/``arrivals_at``/``departures_at``)
are answered from an index precomputed at construction — the old
implementation rescanned the full event list on every call, O(E·H) over
a simulation run.  The precomputed answers are identical: one entry per
event, in event order.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.service import ServiceArray
from ..core.sla import draw_sla_classes
from ..util.rng import as_generator
from ..workloads.google_model import DEFAULT_MODEL, GoogleWorkloadModel

__all__ = ["ServiceEvent", "WorkloadTrace", "generate_trace"]


@dataclass(frozen=True)
class ServiceEvent:
    """One service's lifecycle: arrives at ``arrival``, departs at
    ``departure`` (exclusive).  ``descriptor_index`` points into the
    trace's service array."""

    arrival: int
    departure: int
    descriptor_index: int

    def active_at(self, t: int) -> bool:
        return self.arrival <= t < self.departure


@dataclass(frozen=True)
class WorkloadTrace:
    """A complete dynamic workload: descriptors plus lifecycle events.

    ``sla``, when present, names each descriptor's service class
    (``"gold"``/``"silver"``/``"best-effort"``); ``None`` means the
    whole trace is best-effort.
    """

    services: ServiceArray
    events: tuple[ServiceEvent, ...]
    horizon: int
    sla: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.sla is not None and len(self.sla) != len(self.services):
            raise ValueError(
                f"got {len(self.sla)} SLA classes for "
                f"{len(self.services)} services")
        # Per-step index: one bucket of descriptor indices per step, in
        # event order (identical to a per-call scan of ``events``), plus
        # exact arrival/departure counts keyed by raw timestamps.
        buckets: list[list[int]] = [[] for _ in range(self.horizon)]
        for e in self.events:
            for t in range(max(e.arrival, 0), min(e.departure, self.horizon)):
                buckets[t].append(e.descriptor_index)
        active = []
        for b in buckets:
            arr = np.array(b, dtype=np.int64)
            arr.setflags(write=False)
            active.append(arr)
        object.__setattr__(self, "_active_by_step", tuple(active))
        object.__setattr__(self, "_arrival_counts",
                           Counter(e.arrival for e in self.events))
        object.__setattr__(self, "_departure_counts",
                           Counter(e.departure for e in self.events))

    def active_indices(self, t: int) -> np.ndarray:
        """Descriptor indices of services active at time *t*."""
        if 0 <= t < self.horizon:
            return self._active_by_step[t]  # type: ignore[attr-defined]
        return np.array([e.descriptor_index for e in self.events
                         if e.active_at(t)], dtype=np.int64)

    def arrivals_at(self, t: int) -> int:
        return self._arrival_counts.get(t, 0)  # type: ignore[attr-defined]

    def departures_at(self, t: int) -> int:
        return self._departure_counts.get(t, 0)  # type: ignore[attr-defined]


def generate_trace(horizon: int,
                   mean_arrivals_per_step: float,
                   mean_lifetime_steps: float,
                   model: GoogleWorkloadModel = DEFAULT_MODEL,
                   rng: np.random.Generator | int | None = None,
                   initial_services: int = 0,
                   sla_mix: Mapping[str, float] | None = None) -> WorkloadTrace:
    """Generate a dynamic workload trace.

    Parameters
    ----------
    horizon:
        Number of simulation steps.
    mean_arrivals_per_step:
        Poisson arrival rate.
    mean_lifetime_steps:
        Geometric mean lifetime; departures beyond the horizon are
        clamped to it (services still running at the end).
    initial_services:
        Services already present at t = 0.
    sla_mix:
        Optional weighted SLA-class mix (e.g. ``{"gold": 1, "silver": 2,
        "best-effort": 7}``); when given, each service draws a class.
        Omitting it leaves the trace unannotated *and* consumes no
        randomness, so pre-existing traces are reproduced bit-exactly.
    """
    if horizon < 1:
        raise ValueError("horizon must be positive")
    if mean_lifetime_steps <= 0:
        raise ValueError("mean lifetime must be positive")
    rng = as_generator(rng)
    events: list[ServiceEvent] = []
    arrivals: list[int] = [0] * initial_services
    for t in range(horizon):
        arrivals.extend([t] * int(rng.poisson(mean_arrivals_per_step)))
    count = len(arrivals)
    if count == 0:
        raise ValueError("trace generated no services; raise the rates")
    # Geometric lifetimes with the requested mean (p = 1/mean).
    lifetimes = rng.geometric(min(1.0, 1.0 / mean_lifetime_steps), size=count)
    services = model.generate_services(count, rng=rng)
    for i, (t0, life) in enumerate(zip(arrivals, lifetimes)):
        events.append(ServiceEvent(
            arrival=t0,
            departure=min(horizon, t0 + int(life)),
            descriptor_index=i,
        ))
    sla = (draw_sla_classes(count, sla_mix, rng)
           if sla_mix is not None else None)
    return WorkloadTrace(services=services, events=tuple(events),
                         horizon=horizon, sla=sla)
