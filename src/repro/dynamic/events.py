"""Workload event streams for the dynamic hosting simulation.

The paper's conclusion sketches the next step: deploy METAHVPLIGHT plus
the §6 error mitigation "as part of the resource management component of
an open cloud computing infrastructure" and evaluate it against live
workloads.  This package builds that evaluation substrate as a
discrete-time simulation: services arrive, run for a while (with true
CPU needs the scheduler never sees exactly), and depart; the platform
re-allocates periodically.

This module generates the event streams: Poisson-ish arrivals with
geometric lifetimes, service descriptors drawn from the same
Google-trace-like model as the static experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.service import ServiceArray
from ..util.rng import as_generator
from ..workloads.google_model import DEFAULT_MODEL, GoogleWorkloadModel

__all__ = ["ServiceEvent", "WorkloadTrace", "generate_trace"]


@dataclass(frozen=True)
class ServiceEvent:
    """One service's lifecycle: arrives at ``arrival``, departs at
    ``departure`` (exclusive).  ``descriptor_index`` points into the
    trace's service array."""

    arrival: int
    departure: int
    descriptor_index: int

    def active_at(self, t: int) -> bool:
        return self.arrival <= t < self.departure


@dataclass(frozen=True)
class WorkloadTrace:
    """A complete dynamic workload: descriptors plus lifecycle events."""

    services: ServiceArray
    events: tuple[ServiceEvent, ...]
    horizon: int

    def active_indices(self, t: int) -> np.ndarray:
        """Descriptor indices of services active at time *t*."""
        return np.array([e.descriptor_index for e in self.events
                         if e.active_at(t)], dtype=np.int64)

    def arrivals_at(self, t: int) -> int:
        return sum(1 for e in self.events if e.arrival == t)

    def departures_at(self, t: int) -> int:
        return sum(1 for e in self.events if e.departure == t)


def generate_trace(horizon: int,
                   mean_arrivals_per_step: float,
                   mean_lifetime_steps: float,
                   model: GoogleWorkloadModel = DEFAULT_MODEL,
                   rng: np.random.Generator | int | None = None,
                   initial_services: int = 0) -> WorkloadTrace:
    """Generate a dynamic workload trace.

    Parameters
    ----------
    horizon:
        Number of simulation steps.
    mean_arrivals_per_step:
        Poisson arrival rate.
    mean_lifetime_steps:
        Geometric mean lifetime; departures beyond the horizon are
        clamped to it (services still running at the end).
    initial_services:
        Services already present at t = 0.
    """
    if horizon < 1:
        raise ValueError("horizon must be positive")
    if mean_lifetime_steps <= 0:
        raise ValueError("mean lifetime must be positive")
    rng = as_generator(rng)
    events: list[ServiceEvent] = []
    arrivals: list[int] = [0] * initial_services
    for t in range(horizon):
        arrivals.extend([t] * int(rng.poisson(mean_arrivals_per_step)))
    count = len(arrivals)
    if count == 0:
        raise ValueError("trace generated no services; raise the rates")
    # Geometric lifetimes with the requested mean (p = 1/mean).
    lifetimes = rng.geometric(min(1.0, 1.0 / mean_lifetime_steps), size=count)
    services = model.generate_services(count, rng=rng)
    for i, (t0, life) in enumerate(zip(arrivals, lifetimes)):
        events.append(ServiceEvent(
            arrival=t0,
            departure=min(horizon, t0 + int(life)),
            descriptor_index=i,
        ))
    return WorkloadTrace(services=services, events=tuple(events),
                         horizon=horizon)
