"""Validator for Prometheus text exposition format 0.0.4.

Used two ways: as a library (``check_prometheus_text``) by the metrics
tests, and as a CLI (``python -m repro.obs.promcheck metrics.prom``) by
the CI ``service-smoke`` job to prove the daemon's ``GET /metrics``
output is a real scrape target, not just plausible-looking text.

Checks: metric/label name charsets, ``# TYPE`` declared once per
family and before its samples, sample values parse as floats (or
``+Inf``/``-Inf``/``NaN``), histogram families expose ``_bucket`` /
``_sum`` / ``_count`` series with a terminal ``le="+Inf"`` bucket and
non-decreasing cumulative counts, and counters/gauges are non-repeating
per label set.
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Sequence, Tuple

__all__ = ["check_prometheus_text", "main"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$")
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"'
    r'(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)')
_VALUE_RE = re.compile(
    r"^([+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?|[+-]?Inf|NaN)$")


def _parse_labels(raw: str, errors: List[str], lineno: int) -> Tuple:
    pairs = []
    pos = 0
    while pos < len(raw):
        m = _LABEL_PAIR_RE.match(raw, pos)
        if not m:
            errors.append(f"line {lineno}: malformed labels {{{raw}}}")
            return tuple(pairs)
        pairs.append((m.group("key"), m.group("value")))
        pos = m.end()
    return tuple(pairs)


def _family_of(sample_name: str, typed: Dict[str, str]) -> str:
    """Map a sample name to its family (histogram series share one)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if typed.get(base) in ("histogram", "summary"):
                return base
    return sample_name


def check_prometheus_text(text: str) -> List[str]:
    """Return a list of format violations (empty ⇒ valid)."""
    errors: List[str] = []
    typed: Dict[str, str] = {}
    seen_samples: Dict[Tuple[str, Tuple], int] = {}
    family_samples: Dict[str, int] = {}
    histogram_buckets: Dict[Tuple[str, Tuple], List[Tuple[float, float]]] = {}

    if text and not text.endswith("\n"):
        errors.append("exposition must end with a newline")

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                errors.append(f"line {lineno}: malformed HELP line")
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or not _NAME_RE.match(parts[2]):
                errors.append(f"line {lineno}: malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                errors.append(f"line {lineno}: unknown type {kind!r}")
            if name in typed:
                errors.append(f"line {lineno}: duplicate TYPE for {name}")
            if family_samples.get(name):
                errors.append(
                    f"line {lineno}: TYPE for {name} after its samples")
            typed[name] = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment

        m = _SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        if not _VALUE_RE.match(m.group("value")):
            errors.append(
                f"line {lineno}: bad value {m.group('value')!r}")
        labels = _parse_labels(m.group("labels") or "", errors, lineno)
        for key, _ in labels:
            if not _LABEL_RE.match(key):
                errors.append(f"line {lineno}: bad label name {key!r}")

        family = _family_of(name, typed)
        family_samples[family] = family_samples.get(family, 0) + 1
        if family not in typed:
            errors.append(
                f"line {lineno}: sample {name} has no # TYPE line")

        key = (name, labels)
        if key in seen_samples and typed.get(family) != "untyped":
            errors.append(
                f"line {lineno}: duplicate sample {name}{dict(labels)}")
        seen_samples[key] = lineno

        if (typed.get(family) == "histogram"
                and name == f"{family}_bucket"):
            le = dict(labels).get("le")
            if le is None:
                errors.append(
                    f"line {lineno}: histogram bucket without le label")
            else:
                other = tuple(p for p in labels if p[0] != "le")
                bound = float("inf") if le == "+Inf" else float(le)
                histogram_buckets.setdefault((family, other), []).append(
                    (bound, float(m.group("value"))))

    for (family, _labels), buckets in histogram_buckets.items():
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds):
            errors.append(f"{family}: bucket bounds not ascending")
        if not bounds or bounds[-1] != float("inf"):
            errors.append(f"{family}: missing le=\"+Inf\" bucket")
        counts = [c for _, c in buckets]
        if counts != sorted(counts):
            errors.append(f"{family}: bucket counts not cumulative")

    return errors


def main(argv: "Sequence[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.promcheck METRICS_FILE",
              file=sys.stderr)
        return 2
    try:
        with open(argv[0]) as fh:
            text = fh.read()
    except OSError as exc:
        print(f"promcheck: cannot read {argv[0]}: {exc}", file=sys.stderr)
        return 2
    errors = check_prometheus_text(text)
    if errors:
        for err in errors:
            print(f"promcheck: {err}", file=sys.stderr)
        print(f"promcheck: FAILED ({len(errors)} violations)",
              file=sys.stderr)
        return 1
    families = sum(1 for line in text.splitlines()
                   if line.startswith("# TYPE "))
    print(f"promcheck: OK ({families} metric families)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
