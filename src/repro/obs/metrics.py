"""Shared metrics registry: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` holds *families* keyed by metric name; a
family with labels hands out per-label-set children via
``family.labels(endpoint="alloc")`` (children are cached, so hot paths
can look one up once and hold it).  All mutation is lock-protected —
``+=`` on a Python float is not atomic across the bytecode boundary, so
24 threads hammering one counter would otherwise drop increments.

:meth:`MetricsRegistry.render` produces Prometheus text exposition
format 0.0.4 (``# HELP`` / ``# TYPE`` lines, cumulative histogram
buckets with a ``+Inf`` bound, label-value escaping), which is what the
daemon serves at ``GET /metrics``.  The checker in
:mod:`repro.obs.promcheck` validates exactly this dialect in CI.

Everything here is stdlib-only and importable from any layer without
cycles (this module imports nothing from :mod:`repro`).
"""

from __future__ import annotations

import math
import re
import threading
import time
from typing import (Callable, Dict, Iterator, Optional, Sequence, Tuple,
                    Type, TypeVar)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_F = TypeVar("_F", bound="_Family")

#: Solve latencies at this scale run ~1 ms-1 s; log-ish spacing in
#: seconds, matching Prometheus convention for ``*_seconds`` metrics.
DEFAULT_LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                           0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_suffix(labels: Tuple[Tuple[str, str], ...],
                  extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(str(v))}"'
                    for k, v in pairs)
    return "{" + body + "}"


class _Family:
    """Common machinery: label validation and child caching."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._children: Dict[Tuple[str, ...], "_Family"] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: object) -> "_Family":
        """The child metric for this label set (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(labels)}")
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _make_child(self) -> "_Family":
        raise NotImplementedError

    def _render_series(self, name: str,
                       label_pairs: Tuple[Tuple[str, str], ...]
                       ) -> Iterator[str]:
        raise NotImplementedError

    def children(self) -> Dict[Tuple[str, ...], "_Family"]:
        """Snapshot of label-value tuple → child metric (labelled
        families only; unlabelled families have no children)."""
        with self._lock:
            return dict(self._children)

    def _samples(self) -> Iterator[
            Tuple[Tuple[Tuple[str, str], ...], "_Family"]]:
        """Yield ``(label_pairs, child)`` for every series."""
        if self.label_names:
            with self._lock:
                items = list(self._children.items())
            for key, child in items:
                yield tuple(zip(self.label_names, key)), child
        else:
            yield (), self

    def render(self) -> str:
        lines = [f"# HELP {self.name} {self.help_text}",
                 f"# TYPE {self.name} {self.kind}"]
        for label_pairs, child in self._samples():
            lines.extend(child._render_series(self.name, label_pairs))
        return "\n".join(lines)


class Counter(_Family):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()):
        super().__init__(name, help_text, label_names)
        self._value = 0.0

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help_text)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _render_series(self, name: str,
                       label_pairs: Tuple[Tuple[str, str], ...]
                       ) -> Iterator[str]:
        yield (f"{name}{_label_suffix(label_pairs)} "
               f"{_format_value(self.value)}")


class Gauge(_Family):
    """A value that goes up and down, or is computed at scrape time."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()):
        super().__init__(name, help_text, label_names)
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help_text)

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Compute the value lazily at read time (e.g. uptime)."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def _render_series(self, name: str,
                       label_pairs: Tuple[Tuple[str, str], ...]
                       ) -> Iterator[str]:
        yield (f"{name}{_label_suffix(label_pairs)} "
               f"{_format_value(self.value)}")


class Histogram(_Family):
    """Fixed-bucket histogram with cumulative Prometheus rendering.

    Buckets are upper bounds in ascending order; an implicit ``+Inf``
    bucket catches the tail.  Only aggregates (bucket counts, sum,
    count) are kept — callers that need exact percentiles (the JSON
    metrics view's p50/p90/p99) retain their own bounded sample window.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, help_text, label_names)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help_text, buckets=self.bounds)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    return
            self._bucket_counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def _render_series(self, name: str,
                       label_pairs: Tuple[Tuple[str, str], ...]
                       ) -> Iterator[str]:
        with self._lock:
            counts = list(self._bucket_counts)
            total = self._count
            acc_sum = self._sum
        cumulative = 0
        for bound, n in zip(self.bounds, counts):
            cumulative += n
            le = (("le", _format_value(bound)),)
            yield (f"{name}_bucket{_label_suffix(label_pairs, le)} "
                   f"{cumulative}")
        yield (f"{name}_bucket{_label_suffix(label_pairs, (('le', '+Inf'),))} "
               f"{total}")
        yield f"{name}_sum{_label_suffix(label_pairs)} {_format_value(acc_sum)}"
        yield f"{name}_count{_label_suffix(label_pairs)} {total}"


class MetricsRegistry:
    """Get-or-create home for metric families; renders them all.

    ``get_or_create`` is idempotent per name (with a kind check), so
    modules can declare their metrics at import/construction time
    without coordinating ownership.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()
        self.created_at = time.time()

    def _get_or_create(self, cls: Type[_F], name: str, help_text: str,
                       label_names: Sequence[str],
                       **kw: Sequence[float]) -> _F:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}, not {cls.kind}")
                return family
            family = cls(name, help_text, label_names, **kw)  # type: ignore[call-arg]
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                label_names: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, label_names)

    def gauge(self, name: str, help_text: str = "",
              label_names: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, label_names)

    def histogram(self, name: str, help_text: str = "",
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text,
                                   label_names, buckets=buckets)

    def render(self) -> str:
        """Prometheus text exposition (format 0.0.4), one blob."""
        with self._lock:
            families = sorted(self._families.values(),
                              key=lambda f: f.name)
        blocks = [family.render() for family in families]
        return "\n".join(blocks) + "\n" if blocks else ""
