"""Offline trace analysis: ``repro obs report TRACE.jsonl``.

Reads a JSONL trace written by :mod:`repro.obs.trace` and renders two
plain-text tables: a per-span-name summary (count, total/mean/p50/p95/
max latency, error count) and the top-N slowest individual spans with
their tags — enough to answer "where did this run spend its time"
without loading the trace into anything heavier.

Malformed lines are counted and skipped, not fatal: traces written by
several processes can in principle tear at the very end of a file when
a run is killed mid-write.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["load_trace", "summarize", "render_report"]


def load_trace(path: str) -> Tuple[List[dict], int]:
    """Parse a JSONL trace; returns ``(records, malformed_line_count)``."""
    records: List[dict] = []
    bad = 0
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                bad += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                bad += 1
    return records, bad


def _percentile(sorted_vals: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending sequence."""
    if not sorted_vals:
        return 0.0
    pos = (len(sorted_vals) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = pos - lo
    return sorted_vals[lo] * (1 - frac) + sorted_vals[hi] * frac


def summarize(records: Sequence[dict], name: Optional[str] = None) -> dict:
    """Aggregate span records into per-name stats.

    Returns ``{"names": {span_name: stats}, "spans": n, "events": n,
    "traces": n}``; with *name* set, only that span name is kept.
    """
    by_name: Dict[str, List[dict]] = {}
    traces = set()
    events = 0
    for record in records:
        trace = record.get("trace")
        if trace:
            traces.add(trace)
        if record.get("kind") == "event":
            events += 1
            continue
        if record.get("kind") != "span":
            continue
        span_name = record.get("name", "?")
        if name is not None and span_name != name:
            continue
        by_name.setdefault(span_name, []).append(record)

    names = {}
    for span_name, spans in by_name.items():
        durs = sorted(float(s.get("dur_ms", 0.0)) for s in spans)
        names[span_name] = {
            "count": len(durs),
            "errors": sum(1 for s in spans if "error" in s),
            "total_ms": sum(durs),
            "mean_ms": sum(durs) / len(durs),
            "p50_ms": _percentile(durs, 0.50),
            "p95_ms": _percentile(durs, 0.95),
            "max_ms": durs[-1],
        }
    return {
        "names": names,
        "spans": sum(s["count"] for s in names.values()),
        "events": events,
        "traces": len(traces),
    }


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _fmt_ms(ms: float) -> str:
    return f"{ms:.3f}" if ms < 100 else f"{ms:.1f}"


def render_report(records: Sequence[dict], top: int = 10,
                  name: Optional[str] = None, malformed: int = 0) -> str:
    """The full human-readable report for ``repro obs report``."""
    summary = summarize(records, name=name)
    out = []

    header = (f"{summary['spans']} spans, {summary['events']} events, "
              f"{summary['traces']} traces")
    if malformed:
        header += f" ({malformed} malformed lines skipped)"
    out.append(header)
    out.append("")

    out.append("Per-span summary (latencies in ms)")
    rows = []
    ranked = sorted(summary["names"].items(),
                    key=lambda kv: kv[1]["total_ms"], reverse=True)
    for span_name, stats in ranked:
        rows.append([
            span_name, str(stats["count"]), str(stats["errors"]),
            _fmt_ms(stats["total_ms"]), _fmt_ms(stats["mean_ms"]),
            _fmt_ms(stats["p50_ms"]), _fmt_ms(stats["p95_ms"]),
            _fmt_ms(stats["max_ms"]),
        ])
    out.append(_table(
        ["span", "count", "err", "total", "mean", "p50", "p95", "max"],
        rows))
    out.append("")

    spans = [r for r in records if r.get("kind") == "span"
             and (name is None or r.get("name") == name)]
    spans.sort(key=lambda r: float(r.get("dur_ms", 0.0)), reverse=True)
    out.append(f"Top {min(top, len(spans))} slowest spans")
    rows = []
    for record in spans[:top]:
        tags = record.get("tags") or {}
        tag_text = " ".join(f"{k}={v}" for k, v in tags.items())
        if len(tag_text) > 60:
            tag_text = tag_text[:57] + "..."
        rows.append([
            record.get("name", "?"),
            _fmt_ms(float(record.get("dur_ms", 0.0))),
            str(record.get("trace", ""))[:16],
            str(record.get("pid", "")),
            tag_text,
        ])
    out.append(_table(["span", "dur_ms", "trace", "pid", "tags"], rows))
    return "\n".join(out)
