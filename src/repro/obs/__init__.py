"""Unified observability: tracing, metrics, and trace reports.

Three stdlib-only pillars shared by the solver, the experiment runner,
and the allocation daemon:

* :mod:`repro.obs.trace` — structured spans emitted as JSONL.  Enable
  with ``repro --obs-log FILE ...`` or ``REPRO_OBS=FILE``; disabled by
  default with a zero-allocation fast path (``obs.span`` returns a
  shared no-op, hot paths guard tag construction behind
  ``obs.enabled()``).
* :mod:`repro.obs.metrics` — thread-safe counters / gauges /
  histograms with a Prometheus text renderer; backs the daemon's
  ``GET /metrics``.
* :mod:`repro.obs.report` — offline ``repro obs report TRACE.jsonl``
  summarising where a run spent its time.

Typical instrumentation::

    from repro import obs

    with obs.span("yield.search") as sp:
        result = solve(...)
        if obs.enabled():
            sp.annotate(probes=stats["probes"])

This package deliberately imports nothing from the rest of
:mod:`repro`, so any layer (``util``, ``algorithms``, ``service``) can
depend on it without cycles.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import (
    ENV_VAR,
    Span,
    configure,
    current_span_id,
    current_trace_id,
    disable,
    enabled,
    event,
    new_trace_id,
    sink_path,
    span,
    timed_span,
    trace_context,
)

__all__ = [
    "ENV_VAR",
    "Span",
    "configure",
    "current_span_id",
    "current_trace_id",
    "disable",
    "enabled",
    "event",
    "new_trace_id",
    "sink_path",
    "span",
    "timed_span",
    "trace_context",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]
