"""Logging setup for the daemon: level control and optional JSON lines.

``repro serve --log-level debug --log-json`` routes through here.  The
JSON formatter emits one object per line (``ts``/``level``/``logger``/
``msg`` plus any ``extra=`` fields and the current trace id when one is
active), so daemon logs and obs traces can be joined on ``trace``.
"""

from __future__ import annotations

import json
import logging
import time

from . import trace

__all__ = ["JsonFormatter", "setup_logging"]

#: LogRecord attributes that are plumbing, not user-supplied extras.
_RESERVED = frozenset(vars(logging.makeLogRecord({})) ) | {"message",
                                                           "asctime"}


class JsonFormatter(logging.Formatter):
    """One JSON object per log line, trace-id aware."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        trace_id = trace.current_trace_id()
        if trace_id is not None:
            payload["trace"] = trace_id
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def setup_logging(level: str = "info", json_lines: bool = False,
                  logger_name: str = "repro") -> logging.Logger:
    """Configure the ``repro`` logger tree for console output.

    Idempotent: replaces any handlers a previous call installed rather
    than stacking duplicates (tests call this repeatedly in-process).
    """
    logger = logging.getLogger(logger_name)
    logger.setLevel(getattr(logging, level.upper(), logging.INFO))
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler()
    if json_lines:
        handler.setFormatter(JsonFormatter())
    else:
        formatter = logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s: %(message)s")
        formatter.converter = time.gmtime
        handler.setFormatter(formatter)
    logger.addHandler(handler)
    logger.propagate = False
    return logger
