"""Structured tracing: lightweight spans emitted as JSONL.

One process-wide *sink* (a JSONL file, configured via the ``--obs-log``
CLI flag or the ``REPRO_OBS`` environment variable) receives one record
per finished span::

    {"kind": "span", "name": "yield.search", "trace": "6f…", "span":
     "ab12cd34", "parent": "9e…", "ts": 1754550000.123456,
     "dur_ms": 4.211, "pid": 4242, "tags": {"probes": 5, …}}

Design constraints, in order:

* **Disabled is free.**  When no sink is configured, :func:`span`
  returns a shared no-op singleton — no object allocation, no clock
  read, no context-variable traffic.  The instrumented hot paths
  (probe loops, checkpoint appends) additionally guard their tag
  construction behind :func:`enabled`, so a disabled run does only a
  global-bool check per instrumentation site (< 2% of the META sweep
  benchmark; gated in ``benchmarks/test_bench_meta_speed.py``).

* **Correct nesting and propagation.**  Span parentage rides a
  :mod:`contextvars` variable, so spans nest across function calls and
  threads started with a copied context; :class:`trace_context`
  pins an explicit trace id for a region (the daemon uses one per HTTP
  request) whether or not a sink is configured, so trace ids can be
  returned to clients even when tracing is off.

* **Multi-process safe enough.**  Records are single ``write()`` calls
  of one ``\\n``-terminated line to an append-mode file; worker
  processes (which inherit ``REPRO_OBS`` or the forked sink) interleave
  whole lines.  Every record carries ``pid``.

:func:`timed_span` is the bridge for the pre-existing timing helpers
(:mod:`repro.util.timing`): it always *measures* — the caller reads
``.duration`` — but only *emits* when tracing is enabled, so Table 2
timings and trace records share one clock path (``time.perf_counter``).
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from contextvars import ContextVar
from typing import Optional

__all__ = [
    "ENV_VAR",
    "Span",
    "configure",
    "current_span_id",
    "current_trace_id",
    "disable",
    "enabled",
    "event",
    "new_trace_id",
    "sink_path",
    "span",
    "timed_span",
    "trace_context",
]

#: Environment variable naming the JSONL sink (read once at import, and
#: again by worker processes importing this module fresh).
ENV_VAR = "REPRO_OBS"

#: ``(trace_id, innermost span_id | None)`` for the current context.
_current: ContextVar[Optional[tuple]] = ContextVar("repro_obs_current",
                                                   default=None)

_enabled = False
_sink: Optional["_Sink"] = None
_state_lock = threading.Lock()


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (also usable as a request id)."""
    return os.urandom(8).hex()


def _new_span_id() -> str:
    return os.urandom(4).hex()


class _Sink:
    """Thread-safe append-only JSONL writer."""

    def __init__(self, path: str):
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "a")
        self._lock = threading.Lock()

    def write(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        with self._lock:
            if self._fh is None:  # closed concurrently: drop silently
                return
            self._fh.write(line)
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def configure(path: str, persist_env: bool = False) -> None:
    """Enable tracing to JSONL file *path* (appending).

    With ``persist_env`` the path is also exported as ``REPRO_OBS`` so
    spawned worker processes (experiment pools, the daemon under the
    soak driver) trace into the same file.
    """
    global _sink, _enabled
    with _state_lock:
        old = _sink
        _sink = _Sink(path)
        _enabled = True
    if old is not None:
        old.close()
    if persist_env:
        os.environ[ENV_VAR] = path


def disable() -> None:
    """Stop tracing, close the sink, and clear ``REPRO_OBS``."""
    global _sink, _enabled
    with _state_lock:
        old = _sink
        _sink = None
        _enabled = False
    if old is not None:
        old.close()
    os.environ.pop(ENV_VAR, None)


def enabled() -> bool:
    """True when a sink is configured.  The fast-path guard: hot code
    builds tags only behind this check."""
    return _enabled


def sink_path() -> Optional[str]:
    """The active sink's path, or ``None`` when tracing is disabled."""
    sink = _sink
    return None if sink is None else sink.path


def current_trace_id() -> Optional[str]:
    """Trace id of the enclosing span/:class:`trace_context`, if any."""
    cur = _current.get()
    return None if cur is None else cur[0]


def current_span_id() -> Optional[str]:
    """Span id of the innermost active span, if any."""
    cur = _current.get()
    return None if cur is None else cur[1]


class Span:
    """One timed region.  Use via :func:`span` / :func:`timed_span`.

    Context-manager protocol; :meth:`annotate` attaches tags that are
    written with the record at exit.  ``duration`` reads the running
    elapsed seconds while open and freezes at exit.
    """

    __slots__ = ("name", "tags", "trace_id", "span_id", "parent_id",
                 "_emit", "_token", "_t0", "_t1", "_wall")

    def __init__(self, name: str, tags: Optional[dict] = None,
                 emit: bool = True):
        self.name = name
        self.tags = dict(tags) if tags else None
        self.trace_id = self.span_id = self.parent_id = None
        self._emit = emit
        self._token = None
        self._t0 = 0.0
        self._t1 = 0.0

    def annotate(self, **tags: object) -> "Span":
        """Merge *tags* into the record written at exit."""
        if self.tags is None:
            self.tags = tags
        else:
            self.tags.update(tags)
        return self

    @property
    def duration(self) -> float:
        """Elapsed seconds: running while open, frozen after exit."""
        return (self._t1 or time.perf_counter()) - self._t0

    def __enter__(self) -> "Span":
        if self._emit:
            cur = _current.get()
            if cur is None:
                self.trace_id = new_trace_id()
            else:
                self.trace_id, self.parent_id = cur
            self.span_id = _new_span_id()
            self._token = _current.set((self.trace_id, self.span_id))
        self._wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self._t1 = time.perf_counter()
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        sink = _sink
        if self._emit and sink is not None:
            record = {
                "kind": "span",
                "name": self.name,
                "trace": self.trace_id,
                "span": self.span_id,
                "ts": round(self._wall, 6),
                "dur_ms": round((self._t1 - self._t0) * 1e3, 6),
                "pid": os.getpid(),
            }
            if self.parent_id is not None:
                record["parent"] = self.parent_id
            if exc_type is not None:
                record["error"] = exc_type.__name__
            if self.tags:
                record["tags"] = self.tags
            sink.write(record)
        return False


class _NoopSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    duration = 0.0
    name = trace_id = span_id = parent_id = tags = None

    def annotate(self, **tags: object) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


def span(name: str, tags: Optional[dict] = None) -> "Span | _NoopSpan":
    """A traced region: ``with obs.span("meta.solve", tags={...}) as sp``.

    When tracing is disabled this returns a shared no-op singleton —
    the zero-allocation fast path.
    """
    if not _enabled:
        return _NOOP_SPAN
    return Span(name, tags)


def timed_span(name: str, tags: Optional[dict] = None) -> Span:
    """A span that always *measures* but only *emits* when enabled.

    The timing helpers (:mod:`repro.util.timing`) are built on this, so
    wall-clock numbers and trace records come from the same clock reads.
    """
    return Span(name, tags, emit=_enabled)


def event(name: str, tags: Optional[dict] = None) -> None:
    """A zero-duration record (configuration facts, sweep summaries)."""
    sink = _sink
    if sink is None:
        return
    cur = _current.get()
    record = {
        "kind": "event",
        "name": name,
        "ts": round(time.time(), 6),
        "pid": os.getpid(),
    }
    if cur is not None:
        record["trace"] = cur[0]
        if cur[1] is not None:
            record["parent"] = cur[1]
    if tags:
        record["tags"] = tags
    sink.write(record)


class trace_context:
    """Pin the current trace id for a region, sink or no sink.

    The daemon wraps every HTTP request in one of these so the id it
    returns in ``X-Repro-Trace`` is the id all spans of that request
    carry — and so :func:`current_trace_id` works (e.g. to attach the
    id to a stored allocation) even when tracing is disabled.
    """

    __slots__ = ("trace_id", "_token")

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id or new_trace_id()
        self._token = None

    def __enter__(self) -> "trace_context":
        self._token = _current.set((self.trace_id, None))
        return self

    def __exit__(self, *exc: object) -> bool:
        _current.reset(self._token)
        self._token = None
        return False


def _init_from_env() -> None:
    path = os.environ.get(ENV_VAR)
    if path:
        configure(path)


_init_from_env()
atexit.register(lambda: _sink is not None and _sink.close())
